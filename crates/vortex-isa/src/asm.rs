//! Label-resolving assembler used by the code generator.
//!
//! Control-flow targets are emitted as [`Label`]s and resolved to relative
//! instruction offsets when [`Asm::finish`] is called.

use crate::{BranchCond, Instr, Reg};

/// A forward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// Assembler failure (unbound label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "assembler error: {}", self.message)
    }
}

impl std::error::Error for AsmError {}

enum Pending {
    Done(Instr),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: Label,
    },
    Jal {
        rd: Reg,
        target: Label,
    },
    Split {
        rs1: Reg,
        else_target: Label,
    },
    Join {
        target: Label,
    },
    Pred {
        rs1: Reg,
        rs2: Reg,
        exit_target: Label,
    },
}

/// The assembler.
#[derive(Default)]
pub struct Asm {
    code: Vec<Pending>,
    labels: Vec<Option<u32>>,
}

impl Asm {
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current position (instruction index).
    pub fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label((self.labels.len() - 1) as u32)
    }

    /// Bind `l` to the current position.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0 as usize].is_none(), "label bound twice");
        self.labels[l.0 as usize] = Some(self.here());
    }

    /// Emit a fully-formed instruction.
    pub fn emit(&mut self, i: Instr) {
        self.code.push(Pending::Done(i));
    }

    /// Emit a conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: Label) {
        self.code.push(Pending::Branch {
            cond,
            rs1,
            rs2,
            target,
        });
    }

    /// Emit an unconditional jump (`jal x0, target`).
    pub fn jump(&mut self, target: Label) {
        self.code.push(Pending::Jal { rd: 0, target });
    }

    /// Emit `jal rd, target`.
    pub fn jal(&mut self, rd: Reg, target: Label) {
        self.code.push(Pending::Jal { rd, target });
    }

    /// Emit a SPLIT whose else-path starts at `else_target`.
    pub fn split(&mut self, rs1: Reg, else_target: Label) {
        self.code.push(Pending::Split { rs1, else_target });
    }

    /// Emit a JOIN whose reconvergence point is `target`.
    pub fn join(&mut self, target: Label) {
        self.code.push(Pending::Join { target });
    }

    /// Emit a PRED guarding a divergent loop with the given exit.
    pub fn pred(&mut self, rs1: Reg, rs2: Reg, exit_target: Label) {
        self.code.push(Pending::Pred {
            rs1,
            rs2,
            exit_target,
        });
    }

    /// Resolve all labels and return the instruction stream.
    pub fn finish(self) -> Result<Vec<Instr>, AsmError> {
        let resolve = |l: Label, at: u32| -> Result<i32, AsmError> {
            let pos = self.labels[l.0 as usize].ok_or_else(|| AsmError {
                message: format!("label {l:?} used but never bound"),
            })?;
            Ok(pos as i32 - at as i32)
        };
        self.code
            .iter()
            .enumerate()
            .map(|(at, p)| {
                let at = at as u32;
                Ok(match p {
                    Pending::Done(i) => *i,
                    Pending::Branch {
                        cond,
                        rs1,
                        rs2,
                        target,
                    } => Instr::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: resolve(*target, at)?,
                    },
                    Pending::Jal { rd, target } => Instr::Jal {
                        rd: *rd,
                        offset: resolve(*target, at)?,
                    },
                    Pending::Split { rs1, else_target } => Instr::Split {
                        rs1: *rs1,
                        else_off: resolve(*else_target, at)?,
                    },
                    Pending::Join { target } => Instr::Join {
                        off: resolve(*target, at)?,
                    },
                    Pending::Pred {
                        rs1,
                        rs2,
                        exit_target,
                    } => Instr::Pred {
                        rs1: *rs1,
                        rs2: *rs2,
                        exit_off: resolve(*exit_target, at)?,
                    },
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AluOp;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new();
        let top = a.label();
        let end = a.label();
        a.bind(top);
        a.emit(Instr::OpImm {
            op: AluOp::Add,
            rd: 5,
            rs1: 5,
            imm: -1,
        });
        a.branch(BranchCond::Ne, 5, 0, top); // backward: offset -1
        a.jump(end); // forward: offset +1
        a.bind(end);
        a.emit(Instr::Halt);
        let code = a.finish().unwrap();
        assert_eq!(
            code[1],
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: 5,
                rs2: 0,
                offset: -1
            }
        );
        assert_eq!(code[2], Instr::Jal { rd: 0, offset: 1 });
    }

    #[test]
    fn unbound_label_is_error() {
        let mut a = Asm::new();
        let ghost = a.label();
        a.jump(ghost);
        assert!(a.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new();
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn split_join_pred_offsets() {
        let mut a = Asm::new();
        let els = a.label();
        let join = a.label();
        a.split(9, els); // 0
        a.emit(Instr::Halt); // 1 (then body stand-in)
        a.join(join); // 2
        a.bind(els);
        a.emit(Instr::Halt); // 3 (else body stand-in)
        a.join(join); // 4
        a.bind(join);
        a.emit(Instr::Halt); // 5
        let code = a.finish().unwrap();
        assert_eq!(
            code[0],
            Instr::Split {
                rs1: 9,
                else_off: 3
            }
        );
        assert_eq!(code[2], Instr::Join { off: 3 });
        assert_eq!(code[4], Instr::Join { off: 1 });
    }
}
