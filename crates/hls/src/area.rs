//! RTL resource estimation — the cost table calibrated against the paper's
//! Tables II and III.
//!
//! All constants live in [`costs`]; EXPERIMENTS.md records the resulting
//! paper-vs-model deltas for every calibrated row.

use crate::analysis::{AccessPattern, KernelProfile};
use fpga_arch::ResourceVector;
use ocl_ir::LoadHint;

/// Calibrated cost constants.
pub mod costs {
    /// Load units instantiated per burst-coalesced access site (§III-A).
    pub const BURST_UNITS: u64 = 32;
    /// ALUTs per load unit.
    pub const LOAD_UNIT_ALUT: u64 = 820;
    /// FFs per load unit.
    pub const LOAD_UNIT_FF: u64 = 2_450;
    /// BRAMs per load unit with a thread-affine (narrow-burst) pattern.
    pub const LOAD_UNIT_BRAM_AFFINE: u64 = 12;
    /// BRAMs per load unit with a computed/indirect (deep-burst) pattern —
    /// this is what makes one backprop load line cost "over 1,000 BRAM
    /// blocks" (§III-B): 32 units × 33 ≈ 1,056.
    pub const LOAD_UNIT_BRAM_COMPUTED: u64 = 33;
    /// Store units per store site.
    pub const STORE_UNITS: u64 = 32;
    pub const STORE_UNIT_ALUT: u64 = 620;
    pub const STORE_UNIT_FF: u64 = 2_200;
    pub const STORE_UNIT_BRAM_AFFINE: u64 = 8;
    pub const STORE_UNIT_BRAM_COMPUTED: u64 = 16;
    /// A pipelined LSU is a single unit with a deep buffer.
    pub const PIPELINED_ALUT: u64 = 1_900;
    pub const PIPELINED_FF: u64 = 5_200;
    pub const PIPELINED_BRAM: u64 = 33;
    /// Atomic units (hardware CAS loop + arbitration).
    pub const ATOMIC_ALUT: u64 = 6_500;
    pub const ATOMIC_FF: u64 = 11_000;
    pub const ATOMIC_BRAM: u64 = 64;
    /// Fixed per-kernel infrastructure (dispatcher, id generators, CSRs).
    pub const KERNEL_BASE_ALUT: u64 = 7_800;
    pub const KERNEL_BASE_FF: u64 = 26_000;
    pub const KERNEL_BASE_BRAM: u64 = 24;
    pub const KERNEL_BASE_DSP: u64 = 1;
    /// Datapath op costs.
    pub const INT_ALU_ALUT: u64 = 40;
    pub const INT_ALU_FF: u64 = 72;
    pub const INT_MUL_ALUT: u64 = 160;
    pub const INT_MUL_FF: u64 = 240;
    pub const INT_MUL_DSP: u64 = 1;
    pub const FADD_ALUT: u64 = 640;
    pub const FADD_FF: u64 = 1_100;
    pub const FMUL_ALUT: u64 = 260;
    pub const FMUL_FF: u64 = 520;
    pub const FMUL_DSP: u64 = 2;
    pub const FDIV_ALUT: u64 = 3_800;
    pub const FDIV_FF: u64 = 6_900;
    pub const FDIV_DSP: u64 = 6;
    pub const SFU_ALUT: u64 = 5_200;
    pub const SFU_FF: u64 = 8_800;
    pub const SFU_DSP: u64 = 8;
    /// Control-path cost per basic block (state machine + handshakes).
    pub const BLOCK_ALUT: u64 = 900;
    pub const BLOCK_FF: u64 = 2_600;
    /// Bytes per M20K block.
    pub const M20K_BYTES: u64 = 2_560;
    /// Replication factor for banked local arrays (dual-port + double
    /// buffering per concurrent accessor pair).
    pub const LOCAL_PORTS_PER_BANKSET: u64 = 2;
}

/// Estimated area of a single kernel.
pub fn kernel_area(p: &KernelProfile) -> ResourceVector {
    repro_util::metrics::time("hls.kernel_area", || kernel_area_inner(p))
}

fn kernel_area_inner(p: &KernelProfile) -> ResourceVector {
    use costs::*;
    let mut r = ResourceVector::new(
        KERNEL_BASE_ALUT,
        KERNEL_BASE_FF,
        KERNEL_BASE_BRAM,
        KERNEL_BASE_DSP,
    );
    for s in &p.load_sites {
        match s.hint {
            LoadHint::BurstCoalesced => {
                let bram = match s.pattern {
                    AccessPattern::ThreadAffine => LOAD_UNIT_BRAM_AFFINE,
                    AccessPattern::Computed => LOAD_UNIT_BRAM_COMPUTED,
                };
                r += ResourceVector::new(LOAD_UNIT_ALUT, LOAD_UNIT_FF, bram, 0).scaled(BURST_UNITS);
            }
            LoadHint::Pipelined => {
                r += ResourceVector::new(PIPELINED_ALUT, PIPELINED_FF, PIPELINED_BRAM, 0);
            }
        }
    }
    for s in &p.store_sites {
        let bram = match s.pattern {
            AccessPattern::ThreadAffine => STORE_UNIT_BRAM_AFFINE,
            AccessPattern::Computed => STORE_UNIT_BRAM_COMPUTED,
        };
        r += ResourceVector::new(STORE_UNIT_ALUT, STORE_UNIT_FF, bram, 0).scaled(STORE_UNITS);
    }
    r += ResourceVector::new(ATOMIC_ALUT, ATOMIC_FF, ATOMIC_BRAM, 0).scaled(p.atomic_sites as u64);
    for &(bytes, accesses) in &p.local_arrays {
        let base_banks = (bytes as u64).div_ceil(M20K_BYTES);
        let replication = (accesses as u64).div_ceil(LOCAL_PORTS_PER_BANKSET).max(1);
        r += ResourceVector::new(
            300 * replication,
            520 * replication,
            base_banks * replication,
            0,
        );
    }
    r += ResourceVector::new(INT_ALU_ALUT, INT_ALU_FF, 0, 0).scaled(p.int_alu_ops as u64);
    r += ResourceVector::new(INT_MUL_ALUT, INT_MUL_FF, 0, INT_MUL_DSP)
        .scaled(p.int_mul_sites as u64);
    r += ResourceVector::new(FADD_ALUT, FADD_FF, 0, 0).scaled(p.fadd_sites as u64);
    r += ResourceVector::new(FMUL_ALUT, FMUL_FF, 0, FMUL_DSP).scaled(p.fmul_sites as u64);
    r += ResourceVector::new(FDIV_ALUT, FDIV_FF, 0, FDIV_DSP).scaled(p.fdiv_sites as u64);
    r += ResourceVector::new(SFU_ALUT, SFU_FF, 0, SFU_DSP).scaled(p.sfu_sites as u64);
    r += ResourceVector::new(BLOCK_ALUT, BLOCK_FF, 0, 0).scaled(p.blocks as u64);
    r
}

/// Area of a whole module (benchmarks with several kernels synthesize each
/// compute unit side by side).
pub fn module_area(profiles: &[KernelProfile]) -> ResourceVector {
    profiles
        .iter()
        .map(kernel_area)
        .fold(ResourceVector::ZERO, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::profile;

    fn area_of(src: &str) -> ResourceVector {
        let m = ocl_front::compile(src).unwrap();
        let profiles: Vec<_> = m.kernels.iter().map(profile).collect();
        module_area(&profiles)
    }

    const VECADD: &str =
        "__kernel void v(__global const float* a, __global const float* b, __global float* c) {
        int i = get_global_id(0);
        c[i] = a[i] + b[i];
    }";

    #[test]
    fn vecadd_area_matches_table3_shape() {
        // Paper Table III: Vecadd = 83,792 ALUTs / 263,632 FFs / 1,065
        // BRAMs / 1 DSP. The model must land within 15% on every class.
        let a = area_of(VECADD);
        let close = |got: u64, want: u64| ((got as f64 - want as f64).abs() / want as f64) < 0.15;
        assert!(close(a.aluts, 83_792), "ALUTs {}", a.aluts);
        assert!(close(a.ffs, 263_632), "FFs {}", a.ffs);
        assert!(close(a.brams, 1_065), "BRAMs {}", a.brams);
        assert_eq!(a.dsps, 1);
    }

    #[test]
    fn pipelined_load_reduces_bram_by_an_order_of_magnitude() {
        let burst = area_of(VECADD);
        let piped = area_of(
            "__kernel void v(__global const float* a, __global const float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = __pipelined_load(a + i) + __pipelined_load(b + i);
            }",
        );
        assert!(
            piped.brams * 3 < burst.brams,
            "pipelined {} vs burst {}",
            piped.brams,
            burst.brams
        );
        assert!(piped.aluts < burst.aluts);
    }

    #[test]
    fn computed_pattern_costs_more_bram_than_affine() {
        let affine = area_of(
            "__kernel void k(__global const float* a, __global float* o) {
                int i = get_global_id(0);
                o[i] = a[i];
            }",
        );
        let computed = area_of(
            "__kernel void k(__global const float* a, __global float* o) {
                int i = get_global_id(0);
                o[i] = a[i * i % 1024];
            }",
        );
        assert!(computed.brams > affine.brams + 500);
    }

    #[test]
    fn more_sites_more_area() {
        let one = area_of(
            "__kernel void k(__global float* a) { int i = get_global_id(0); a[i] += 1.0f; }",
        );
        let many = area_of(
            "__kernel void k(__global float* a, __global float* b, __global float* c,
                             __global float* d) {
                int i = get_global_id(0);
                a[i] = b[i] + c[i] + d[i] + a[i];
            }",
        );
        assert!(many.aluts > one.aluts);
        assert!(many.brams > one.brams);
    }
}
