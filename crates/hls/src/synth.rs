//! Synthesis simulation: feasibility, failure reasons, wall-clock model.

use crate::analysis::{profile, KernelProfile};
use crate::area::module_area;
use fpga_arch::{Device, MemoryKind, ResourceVector, Utilization};
use ocl_ir::Module;

/// Options for a synthesis run.
#[derive(Debug, Clone, Default)]
pub struct SynthOptions {
    /// Record the per-kernel profiles in the report (for area debugging).
    pub keep_profiles: bool,
}

/// Why synthesis failed — the "Reason to Fail" column of Table I.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthFailure {
    /// Estimated resources exceed the device; `resource` names the first
    /// overflowing class (BRAM in every Table I case).
    NotEnoughResources {
        resource: &'static str,
        required: ResourceVector,
        capacity: ResourceVector,
        /// Wall-clock hours burned before the failure (§IV-B).
        hours: f64,
    },
    /// 32-bit atomics cannot be synthesized against this board's
    /// heterogeneous memory system (the hybridsort failure, §III-A).
    AtomicsUnsupported { hours: f64 },
}

impl SynthFailure {
    /// Short label matching the paper's Table I wording.
    pub fn reason(&self) -> String {
        match self {
            SynthFailure::NotEnoughResources { resource, .. } => {
                format!("Not enough {resource}")
            }
            SynthFailure::AtomicsUnsupported { .. } => "Atomics".to_string(),
        }
    }

    /// Hours spent before the failure surfaced.
    pub fn hours(&self) -> f64 {
        match self {
            SynthFailure::NotEnoughResources { hours, .. } => *hours,
            SynthFailure::AtomicsUnsupported { hours } => *hours,
        }
    }
}

impl std::fmt::Display for SynthFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthFailure::NotEnoughResources {
                resource,
                required,
                capacity,
                hours,
            } => write!(
                f,
                "synthesis failed after {hours:.1} h: not enough {resource} \
                 (needs {required}, device has {capacity})"
            ),
            SynthFailure::AtomicsUnsupported { hours } => write!(
                f,
                "synthesis failed after {hours:.1} h: atomic functions are not \
                 supported against the board's heterogeneous memory system"
            ),
        }
    }
}

impl std::error::Error for SynthFailure {}

impl From<SynthFailure> for repro_diag::ReproError {
    fn from(e: SynthFailure) -> Self {
        repro_diag::ReproError::Synthesis {
            reason: e.reason(),
            hours: e.hours(),
        }
    }
}

/// A successful synthesis result — one FPGA bitstream per benchmark.
#[derive(Debug, Clone)]
pub struct SynthReport {
    pub area: ResourceVector,
    pub utilization: Utilization,
    /// Estimated wall-clock synthesis hours (§IV-B reports 10.4 h for the
    /// working backprop variant).
    pub hours: f64,
    /// Per-kernel profiles (when requested).
    pub profiles: Vec<KernelProfile>,
}

/// Wall-clock model: mapping + place&route time grows with design size;
/// infeasible designs die during placement, much earlier.
fn synth_hours(area: &ResourceVector, fits: bool) -> f64 {
    let aluts = area.aluts as f64;
    if fits {
        // Calibrated so the working backprop variant (451,395 ALUTs) costs
        // 10.4 hours (§IV-B).
        1.0 + aluts * (9.4 / 451_395.0)
    } else {
        // Failures surfaced after 1.2–1.5 hours in the paper.
        (0.8 + aluts * 0.7e-6).min(2.0)
    }
}

/// Synthesize a module for `device`.
pub fn synthesize(
    module: &Module,
    device: &Device,
    opts: &SynthOptions,
) -> Result<SynthReport, SynthFailure> {
    repro_util::metrics::time("hls.synthesize", || synthesize_inner(module, device, opts))
}

fn synthesize_inner(
    module: &Module,
    device: &Device,
    opts: &SynthOptions,
) -> Result<SynthReport, SynthFailure> {
    let profiles: Vec<KernelProfile> = module.kernels.iter().map(profile).collect();
    // Feature check first: the Intel SDK rejects atomics against HBM's
    // heterogeneous memory system during RTL generation (fast failure).
    if device.memory.kind == MemoryKind::Hbm2 && profiles.iter().any(|p| p.atomic_sites > 0) {
        return Err(SynthFailure::AtomicsUnsupported { hours: 0.4 });
    }
    let area = module_area(&profiles);
    if let Some(resource) = area.first_overflow(&device.capacity) {
        return Err(SynthFailure::NotEnoughResources {
            resource,
            required: area,
            capacity: device.capacity,
            hours: synth_hours(&area, false),
        });
    }
    Ok(SynthReport {
        area,
        utilization: device.utilization(&area),
        hours: synth_hours(&area, true),
        profiles: if opts.keep_profiles {
            profiles
        } else {
            Vec::new()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::mx2100()
    }

    #[test]
    fn small_kernel_synthesizes() {
        let m = ocl_front::compile(
            "__kernel void v(__global float* a) { a[get_global_id(0)] *= 2.0f; }",
        )
        .unwrap();
        let r = synthesize(&m, &dev(), &SynthOptions::default()).unwrap();
        assert!(r.area.fits_in(&dev().capacity));
        assert!(r.hours > 1.0 && r.hours < 12.0, "hours {}", r.hours);
        assert!(r.utilization.brams_pct < 100.0);
    }

    #[test]
    fn bram_hungry_kernel_fails_with_bram_reason() {
        // Many computed-index access sites: each load site costs
        // 32 × 33 = 1,056 BRAMs, so 8 sites blow the 6,847 budget.
        let m = ocl_front::compile(
            "__kernel void big(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                int j = i * i % 512;
                a[j] = a[j + 1] + a[j + 2] + b[j] + b[j + 3] + c[j] + c[j + 5]
                     + a[j * 3 % 256] + b[j * 5 % 128];
            }",
        )
        .unwrap();
        let e = synthesize(&m, &dev(), &SynthOptions::default()).unwrap_err();
        assert_eq!(e.reason(), "Not enough BRAM");
        assert!(e.hours() < 2.5, "failures are fast: {}", e.hours());
    }

    #[test]
    fn atomics_fail_on_hbm_board_only() {
        let m = ocl_front::compile(
            "__kernel void h(__global int* bins, __global const int* d) {
                atomic_add(&bins[d[get_global_id(0)] % 16], 1);
            }",
        )
        .unwrap();
        let e = synthesize(&m, &Device::mx2100(), &SynthOptions::default()).unwrap_err();
        assert_eq!(e.reason(), "Atomics");
        // The same kernel synthesizes on the DDR4 board.
        synthesize(&m, &Device::sx2800(), &SynthOptions::default()).unwrap();
    }

    #[test]
    fn multi_kernel_modules_sum_area() {
        let one = ocl_front::compile(
            "__kernel void a(__global float* x) { x[get_global_id(0)] += 1.0f; }",
        )
        .unwrap();
        let two = ocl_front::compile(
            "__kernel void a(__global float* x) { x[get_global_id(0)] += 1.0f; }
             __kernel void b(__global float* x) { x[get_global_id(0)] *= 2.0f; }",
        )
        .unwrap();
        let r1 = synthesize(&one, &dev(), &SynthOptions::default()).unwrap();
        let r2 = synthesize(&two, &dev(), &SynthOptions::default()).unwrap();
        assert!(r2.area.aluts > r1.area.aluts);
        assert!(r2.hours > r1.hours);
    }

    #[test]
    fn profiles_kept_on_request() {
        let m = ocl_front::compile(
            "__kernel void v(__global float* a) { a[get_global_id(0)] *= 2.0f; }",
        )
        .unwrap();
        let r = synthesize(
            &m,
            &dev(),
            &SynthOptions {
                keep_profiles: true,
            },
        )
        .unwrap();
        assert_eq!(r.profiles.len(), 1);
        assert_eq!(r.profiles[0].name, "v");
    }
}
