//! Kernel datapath analysis: LSU inference and operation census.

use ocl_ir::{BinOp, Builtin, Function, LoadHint, Op, Operand, Scalar, UnOp, VReg};
use rustc_hash::FxHashMap;

/// How the address of a memory access site relates to the work-item id —
/// the property the AOC compiler's LSU inference keys burst-buffer sizing
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Address is an affine function of `get_global_id` (contiguous across
    /// adjacent work items): a narrow burst buffer suffices.
    ThreadAffine,
    /// Computed / indirect index: the LSU provisions deep burst buffers.
    Computed,
}

/// One global-memory access site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteInfo {
    pub pattern: AccessPattern,
    /// For loads: the LSU style chosen (burst-coalesced vs pipelined).
    pub hint: LoadHint,
}

/// Static profile of one kernel, input to the area and performance models.
#[derive(Debug, Clone, Default)]
pub struct KernelProfile {
    pub name: String,
    pub load_sites: Vec<SiteInfo>,
    pub store_sites: Vec<SiteInfo>,
    pub atomic_sites: usize,
    /// (bytes, access-site count) per `__local` array.
    pub local_arrays: Vec<(u32, usize)>,
    pub int_alu_ops: usize,
    pub int_mul_sites: usize,
    pub fadd_sites: usize,
    pub fmul_sites: usize,
    pub fdiv_sites: usize,
    pub sfu_sites: usize,
    pub uses_barrier: bool,
    pub uses_printf: bool,
    /// Basic-block count, a crude proxy for control-path complexity.
    pub blocks: usize,
}

impl KernelProfile {
    /// Total burst-coalesced load sites (32 load units each).
    pub fn burst_load_sites(&self) -> usize {
        self.load_sites
            .iter()
            .filter(|s| s.hint == LoadHint::BurstCoalesced)
            .count()
    }

    /// Total pipelined load sites (1 load unit each).
    pub fn pipelined_load_sites(&self) -> usize {
        self.load_sites
            .iter()
            .filter(|s| s.hint == LoadHint::Pipelined)
            .count()
    }
}

/// Build the profile for a kernel.
pub fn profile(f: &Function) -> KernelProfile {
    let affinity = classify_values(f);
    let mut p = KernelProfile {
        name: f.name.clone(),
        uses_barrier: f.uses_barrier(),
        uses_printf: f.uses_printf(),
        blocks: f.blocks.len(),
        ..Default::default()
    };
    // Per-local-array access counts keyed by the LocalAddr result chains: we
    // count local-space memory ops and attribute them evenly (arrays are few
    // and the area cost depends mostly on the total).
    let mut local_accesses = 0usize;
    for b in &f.blocks {
        for inst in &b.insts {
            match &inst.op {
                Op::Load {
                    ptr, space, hint, ..
                } => match space {
                    ocl_ir::AddressSpace::Global => p.load_sites.push(SiteInfo {
                        pattern: pattern_of(ptr, &affinity),
                        hint: *hint,
                    }),
                    ocl_ir::AddressSpace::Local => local_accesses += 1,
                },
                Op::Store { ptr, space, .. } => match space {
                    ocl_ir::AddressSpace::Global => p.store_sites.push(SiteInfo {
                        pattern: pattern_of(ptr, &affinity),
                        hint: LoadHint::BurstCoalesced,
                    }),
                    ocl_ir::AddressSpace::Local => local_accesses += 1,
                },
                Op::AtomicRmw { .. } => p.atomic_sites += 1,
                Op::Bin { op, ty, .. } => match (ty, op) {
                    (Scalar::F32, BinOp::Mul) => p.fmul_sites += 1,
                    (Scalar::F32, BinOp::Div | BinOp::Rem) => p.fdiv_sites += 1,
                    (Scalar::F32, _) => p.fadd_sites += 1,
                    (_, BinOp::Mul | BinOp::Div | BinOp::Rem) => p.int_mul_sites += 1,
                    _ => p.int_alu_ops += 1,
                },
                Op::Un { op, .. } => match op {
                    UnOp::Sqrt | UnOp::Exp | UnOp::Log | UnOp::Sin | UnOp::Cos => p.sfu_sites += 1,
                    UnOp::I2F | UnOp::U2F | UnOp::F2I | UnOp::Floor => p.fadd_sites += 1,
                    _ => p.int_alu_ops += 1,
                },
                Op::Cmp { ty, .. } => {
                    if *ty == Scalar::F32 {
                        p.fadd_sites += 1;
                    } else {
                        p.int_alu_ops += 1;
                    }
                }
                Op::Select { .. } | Op::Mov { .. } | Op::Gep { .. } | Op::WorkItem(_) => {
                    p.int_alu_ops += 1
                }
                Op::LocalAddr(_) | Op::Barrier | Op::Printf { .. } => {}
            }
        }
    }
    let n_arrays = f.local_arrays.len().max(1);
    for a in &f.local_arrays {
        p.local_arrays
            .push((a.bytes(), local_accesses.div_ceil(n_arrays)));
    }
    p
}

/// Affinity lattice per register: is the value an affine function of the
/// work-item id, and if so is it *unit stride* along dimension 0 (the
/// property that lets the LSU use a narrow burst buffer)?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Aff {
    /// Compile-time constant or kernel argument (uniform across items).
    Uniform,
    /// `uniform + get_global_id(0)` — contiguous across adjacent items.
    UnitAffine,
    /// Affine in some id but strided or in a higher dimension.
    StridedAffine,
    /// Anything else (indirect, data-dependent, loop-carried).
    Other,
}

impl Aff {
    fn rank(self) -> u8 {
        match self {
            Aff::Uniform => 0,
            Aff::UnitAffine => 1,
            Aff::StridedAffine => 2,
            Aff::Other => 3,
        }
    }

    fn join(self, other: Aff) -> Aff {
        if self.rank() >= other.rank() {
            self
        } else {
            other
        }
    }
}

fn classify_values(f: &Function) -> FxHashMap<VReg, Aff> {
    let mut aff: FxHashMap<VReg, Aff> = FxHashMap::default();
    for i in 0..f.params.len() {
        aff.insert(VReg(i as u32), Aff::Uniform);
    }
    // Fixed point over the (possibly cyclic) assignment graph.
    loop {
        let mut changed = false;
        for b in &f.blocks {
            for inst in &b.insts {
                let Some(r) = inst.result else { continue };
                let new = infer(&inst.op, &aff);
                let old = aff.get(&r).copied();
                // Multiple assignments join upward in the lattice.
                let merged = match old {
                    None => new,
                    Some(o) => o.join(new),
                };
                if old != Some(merged) {
                    aff.insert(r, merged);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    aff
}

fn operand_aff(o: &Operand, aff: &FxHashMap<VReg, Aff>) -> Aff {
    match o {
        Operand::Const(_) => Aff::Uniform,
        Operand::Reg(r) => aff.get(r).copied().unwrap_or(Aff::Uniform),
    }
}

fn infer(op: &Op, aff: &FxHashMap<VReg, Aff>) -> Aff {
    match op {
        Op::WorkItem(b) => match b {
            // Dimension 0 is the fastest-varying: adjacent work items have
            // adjacent ids, so unit-stride addressing coalesces.
            Builtin::GlobalId(0) | Builtin::LocalId(0) => Aff::UnitAffine,
            Builtin::GlobalId(_) | Builtin::LocalId(_) | Builtin::GroupId(_) => Aff::StridedAffine,
            _ => Aff::Uniform,
        },
        Op::Mov { a, .. } => operand_aff(a, aff),
        Op::Un { op, a, .. } => match op {
            UnOp::IntCast | UnOp::Neg => operand_aff(a, aff),
            _ => match operand_aff(a, aff) {
                Aff::Uniform => Aff::Uniform,
                _ => Aff::Other,
            },
        },
        Op::Bin { op, a, b, .. } => {
            let (x, y) = (operand_aff(a, aff), operand_aff(b, aff));
            match op {
                BinOp::Add | BinOp::Sub => match (x, y) {
                    (Aff::Uniform, Aff::Uniform) => Aff::Uniform,
                    (a, Aff::Uniform) | (Aff::Uniform, a)
                        if a == Aff::UnitAffine || a == Aff::StridedAffine =>
                    {
                        a
                    }
                    // Sum of two affine terms: still affine but no longer
                    // provably unit stride.
                    (
                        Aff::UnitAffine | Aff::StridedAffine,
                        Aff::UnitAffine | Aff::StridedAffine,
                    ) => Aff::StridedAffine,
                    _ => Aff::Other,
                },
                BinOp::Mul | BinOp::Shl => match (x, y) {
                    (Aff::Uniform, Aff::Uniform) => Aff::Uniform,
                    // Scaling an affine value changes its stride.
                    (Aff::UnitAffine | Aff::StridedAffine, Aff::Uniform)
                    | (Aff::Uniform, Aff::UnitAffine | Aff::StridedAffine) => Aff::StridedAffine,
                    _ => Aff::Other,
                },
                _ => match (x, y) {
                    (Aff::Uniform, Aff::Uniform) => Aff::Uniform,
                    _ => Aff::Other,
                },
            }
        }
        Op::Gep { base, index, .. } => match (operand_aff(base, aff), operand_aff(index, aff)) {
            (Aff::Uniform, Aff::Uniform) => Aff::Uniform,
            (Aff::Uniform, i) if i != Aff::Other => i,
            (b, Aff::Uniform) if b != Aff::Other => b,
            _ => Aff::Other,
        },
        // Loaded values and atomics are data-dependent.
        Op::Load { .. } | Op::AtomicRmw { .. } => Aff::Other,
        Op::Select { .. } => Aff::Other,
        Op::Cmp { .. } => Aff::Other,
        Op::LocalAddr(_) => Aff::Uniform,
        Op::Store { .. } | Op::Barrier | Op::Printf { .. } => Aff::Other,
    }
}

fn pattern_of(ptr: &Operand, aff: &FxHashMap<VReg, Aff>) -> AccessPattern {
    match operand_aff(ptr, aff) {
        // Only uniform or unit-stride addresses coalesce into narrow
        // bursts; strided-affine and data-dependent addresses provision the
        // deep burst buffers that dominate the paper's BRAM counts.
        Aff::Uniform | Aff::UnitAffine => AccessPattern::ThreadAffine,
        Aff::StridedAffine | Aff::Other => AccessPattern::Computed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_src(src: &str) -> KernelProfile {
        let m = ocl_front::compile(src).unwrap();
        profile(&m.kernels[0])
    }

    #[test]
    fn vecadd_sites_are_thread_affine() {
        let p = profile_src(
            "__kernel void v(__global const float* a, __global const float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        );
        assert_eq!(p.load_sites.len(), 2);
        assert_eq!(p.store_sites.len(), 1);
        assert!(p
            .load_sites
            .iter()
            .all(|s| s.pattern == AccessPattern::ThreadAffine));
        assert_eq!(p.store_sites[0].pattern, AccessPattern::ThreadAffine);
        assert_eq!(p.burst_load_sites(), 2);
        assert_eq!(p.fadd_sites, 1);
    }

    #[test]
    fn matmul_row_access_is_computed() {
        let p = profile_src(
            "__kernel void mm(__global const float* a, __global const float* b,
                              __global float* c, int n) {
                int row = get_global_id(1);
                int col = get_global_id(0);
                float acc = 0.0f;
                for (int k = 0; k < n; k++) acc += a[row * n + k] * b[k * n + col];
                c[row * n + col] = acc;
            }",
        );
        // a[row*n+k]: row comes from dimension 1, so the address is strided
        // across adjacent work items -> deep burst buffers (Computed).
        // b[k*n+col]: unit stride in col -> coalesces (ThreadAffine).
        assert_eq!(p.load_sites.len(), 2);
        let patterns: Vec<_> = p.load_sites.iter().map(|s| s.pattern).collect();
        assert!(
            patterns.contains(&AccessPattern::Computed)
                && patterns.contains(&AccessPattern::ThreadAffine),
            "{patterns:?}"
        );
        // c[row*n+col] is strided for the same reason as a.
        assert_eq!(p.store_sites[0].pattern, AccessPattern::Computed);
        assert_eq!(p.fmul_sites, 1);
    }

    #[test]
    fn indirect_access_is_computed() {
        let p = profile_src(
            "__kernel void g(__global const int* idx, __global float* x) {
                int i = get_global_id(0);
                x[idx[i]] = 1.0f;
            }",
        );
        assert_eq!(p.load_sites[0].pattern, AccessPattern::ThreadAffine);
        assert_eq!(p.store_sites[0].pattern, AccessPattern::Computed);
    }

    #[test]
    fn pipelined_hint_counted() {
        let p = profile_src(
            "__kernel void k(__global const float* a, __global float* o) {
                int i = get_global_id(0);
                o[i] = __pipelined_load(a + i);
            }",
        );
        assert_eq!(p.pipelined_load_sites(), 1);
        assert_eq!(p.burst_load_sites(), 0);
    }

    #[test]
    fn atomics_and_locals_counted() {
        let p = profile_src(
            "__kernel void k(__global int* h) {
                __local float tile[32];
                int i = get_global_id(0);
                tile[get_local_id(0)] = 0.0f;
                barrier(CLK_LOCAL_MEM_FENCE);
                atomic_add(&h[i % 4], 1);
            }",
        );
        assert_eq!(p.atomic_sites, 1);
        assert_eq!(p.local_arrays.len(), 1);
        assert_eq!(p.local_arrays[0].0, 128);
        assert!(p.uses_barrier);
    }
}
