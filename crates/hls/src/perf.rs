//! NDRange pipelined-execution model.
//!
//! The AOC compiler executes multi-work-item kernels by streaming work items
//! through a deeply pipelined datapath (§II-B, "NDRange iterative work item
//! issue"). We model that as:
//!
//! * functional results from the shared reference interpreter (identical
//!   semantics to the soft-GPU flow by construction);
//! * cycle estimate `depth + max(compute, memory, serialization)` where
//!   - compute = dynamic ops / datapath ILP (one item enters per II),
//!   - memory = dynamic bytes moved / device bandwidth,
//!   - serialization = pipelined-load round trips on computed patterns (the
//!     §III-B performance cost of the O2 optimization).

use crate::analysis::{profile, AccessPattern, KernelProfile};
use fpga_arch::Device;
use ocl_ir::interp::{run_ndrange, ExecResult, InterpError, KernelArg, Limits, Memory, NdRange};
use ocl_ir::{Function, LoadHint};

/// Result of an HLS execution: functional output lives in the caller's
/// [`Memory`]; this carries the timing estimate and counters.
#[derive(Debug, Clone)]
pub struct HlsRun {
    /// Estimated kernel cycles at the fabric clock.
    pub cycles: u64,
    /// Interpreter result (dynamic counts, printf output).
    pub exec: ExecResult,
    /// Which bound dominated: "compute", "memory" or "pipelined-load".
    pub bound: &'static str,
}

/// Datapath issue width (scalarized ops retired per cycle once the pipeline
/// is full).
const ILP: u64 = 6;
/// Pipeline depth (fill/drain overhead).
const DEPTH: u64 = 240;
/// Extra round-trip cycles per dynamic pipelined load on a non-consecutive
/// pattern (§III-B: "area efficiency at the expense of performance in
/// nonconsecutive access patterns").
const PIPELINED_PENALTY: u64 = 12;

/// Execute `f` over `nd` against `mem`, returning the timing model output.
pub fn execute_ndrange(
    f: &Function,
    args: &[KernelArg],
    nd: &NdRange,
    mem: &mut Memory,
    device: &Device,
) -> Result<HlsRun, InterpError> {
    let p = profile(f);
    let exec = repro_util::metrics::time("hls.execute", || {
        run_ndrange(f, args, nd, mem, &Limits::default())
    })?;
    Ok(estimate(&p, nd, exec, device))
}

/// Pure timing model, separated for testability.
pub fn estimate(p: &KernelProfile, nd: &NdRange, exec: ExecResult, device: &Device) -> HlsRun {
    repro_util::metrics::time("hls.estimate", || estimate_inner(p, nd, exec, device))
}

fn estimate_inner(p: &KernelProfile, nd: &NdRange, exec: ExecResult, device: &Device) -> HlsRun {
    let items = nd.total_items();
    let compute = exec.steps / ILP + items; // one II per item minimum
    let bytes = (exec.global_loads + exec.global_stores) * 4;
    let bw = device.memory.peak_bytes_per_cycle().max(1);
    let memory = bytes / bw + (device.memory.latency_cycles as u64);
    // Dynamic pipelined loads on computed patterns serialize.
    let piped_computed = p
        .load_sites
        .iter()
        .filter(|s| s.hint == LoadHint::Pipelined && s.pattern == AccessPattern::Computed)
        .count() as u64;
    let static_loads = (p.load_sites.len() as u64).max(1);
    let dyn_per_site = exec.global_loads / static_loads;
    let serialization = piped_computed * dyn_per_site * PIPELINED_PENALTY;
    let (bound, dominant) = [
        ("compute", compute),
        ("memory", memory),
        ("pipelined-load", serialization),
    ]
    .into_iter()
    .max_by_key(|(_, v)| *v)
    .expect("nonempty");
    HlsRun {
        cycles: DEPTH + dominant,
        exec,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_arch::Device;

    fn run_src(src: &str, n: u32) -> (HlsRun, Memory, u32) {
        let m = ocl_front::compile(src).unwrap();
        let k = m.expect_kernel("k");
        let mut mem = Memory::new(1 << 20);
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let pa = mem.alloc_f32(&input);
        let po = mem.alloc(n * 4);
        let r = execute_ndrange(
            k,
            &[KernelArg::Ptr(pa), KernelArg::Ptr(po)],
            &NdRange::d1(n, 16),
            &mut mem,
            &Device::mx2100(),
        )
        .unwrap();
        (r, mem, po)
    }

    const COPY: &str = "__kernel void k(__global const float* a, __global float* o) {
        int i = get_global_id(0);
        o[i] = a[i] * 2.0f;
    }";

    #[test]
    fn functional_results_match_reference() {
        let (_, mem, po) = run_src(COPY, 128);
        let out = mem.read_f32_slice(po, 128);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32);
        }
    }

    #[test]
    fn cycles_scale_with_items() {
        let (small, _, _) = run_src(COPY, 64);
        let (large, _, _) = run_src(COPY, 4096);
        assert!(
            large.cycles > small.cycles * 8,
            "{} vs {}",
            large.cycles,
            small.cycles
        );
    }

    #[test]
    fn pipelined_computed_load_is_slower() {
        let burst = "__kernel void k(__global const float* a, __global float* o) {
            int i = get_global_id(0);
            int j = i * 17 % 64;
            o[i] = a[j];
        }";
        let piped = "__kernel void k(__global const float* a, __global float* o) {
            int i = get_global_id(0);
            int j = i * 17 % 64;
            o[i] = __pipelined_load(a + j);
        }";
        let (rb, _, _) = run_src(burst, 1024);
        let (rp, _, _) = run_src(piped, 1024);
        assert!(
            rp.cycles > rb.cycles,
            "pipelined {} must be slower than burst {}",
            rp.cycles,
            rb.cycles
        );
        assert_eq!(rp.bound, "pipelined-load");
    }

    #[test]
    fn hbm_beats_ddr_on_streaming() {
        let m = ocl_front::compile(COPY).unwrap();
        let k = m.expect_kernel("k");
        let n = 1 << 16;
        let mut cycles = Vec::new();
        for dev in [Device::mx2100(), Device::sx2800()] {
            let mut mem = Memory::new(1 << 20);
            let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let pa = mem.alloc_f32(&input);
            let po = mem.alloc(n * 4);
            let r = execute_ndrange(
                k,
                &[KernelArg::Ptr(pa), KernelArg::Ptr(po)],
                &NdRange::d1(n, 16),
                &mut mem,
                &dev,
            )
            .unwrap();
            cycles.push(r.cycles);
        }
        // Streaming at this size is compute-bound on HBM but the DDR board
        // must never be faster.
        assert!(
            cycles[0] <= cycles[1],
            "hbm {} ddr {}",
            cycles[0],
            cycles[1]
        );
    }
}
