//! `hls-flow` — the high-level-synthesis tool flow.
//!
//! The Rust analogue of the Intel FPGA SDK for OpenCL pipeline the paper
//! describes in Figure 3: kernel IR → datapath analysis → RTL-level resource
//! estimation → synthesis (feasibility against the target device) → NDRange
//! pipelined execution.
//!
//! The pieces that drive the paper's results are modeled explicitly:
//! * **LSU inference** ([`analysis`]): every *global-memory access site* in
//!   the kernel becomes a load-store unit. Default (burst-coalesced) loads
//!   instantiate **32 load units** per site, exactly the behaviour the paper
//!   measured (§III-A: "each array access in the kernel code was synthesized
//!   into 32 load units"); `__pipelined_load` sites instantiate one.
//! * **Area estimation** ([`area`]): a cost table over the profile,
//!   calibrated against the paper's Tables II and III. Access-pattern
//!   classification (thread-affine vs computed index) decides the
//!   burst-buffer depth and hence the BRAM cost per load unit.
//! * **Synthesis** ([`synth`]): feasibility against the device capacity
//!   (BRAM-first failure reporting, matching Table I's "Not enough BRAM"),
//!   the atomics-on-heterogeneous-memory restriction that fails hybridsort,
//!   and a wall-clock model reproducing §IV-B's synthesis times.
//! * **Execution** ([`perf`]): functional execution via the shared reference
//!   interpreter plus a pipelined NDRange performance model (initiation
//!   interval, memory bandwidth bound, pipelined-load serialization).

pub mod analysis;
pub mod area;
pub mod perf;
pub mod synth;

pub use analysis::{AccessPattern, KernelProfile, SiteInfo};
pub use perf::{execute_ndrange, HlsRun};
pub use synth::{synthesize, SynthFailure, SynthOptions, SynthReport};
