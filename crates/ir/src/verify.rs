//! IR well-formedness verifier.
//!
//! Both back ends call this before consuming a module, so malformed IR is
//! rejected with a source-level error instead of a back-end panic — the same
//! role `llvm::verifyModule` plays in the flows of Figures 3 and 5.

use crate::func::{Function, Module};
use crate::inst::{Op, Terminator};
use crate::types::{Scalar, Type};
use crate::value::Operand;

/// A verification failure, with the kernel and block it occurred in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub kernel: String,
    pub detail: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "verify error in kernel `{}`: {}",
            self.kernel, self.detail
        )
    }
}

impl std::error::Error for VerifyError {}

/// Verify every kernel in a module.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for k in &m.kernels {
        verify_function(k)?;
    }
    Ok(())
}

/// Verify a single function.
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    let err = |detail: String| VerifyError {
        kernel: f.name.clone(),
        detail,
    };
    if f.blocks.is_empty() {
        return Err(err("function has no blocks".into()));
    }
    if f.params.len() > f.vreg_types.len() {
        return Err(err("fewer vregs than parameters".into()));
    }
    for (i, p) in f.params.iter().enumerate() {
        if f.vreg_types[i] != p.ty {
            return Err(err(format!(
                "vreg %{i} type {} does not match parameter `{}` type {}",
                f.vreg_types[i], p.name, p.ty
            )));
        }
    }
    let n_blocks = f.blocks.len();
    for (bi, b) in f.blocks.iter().enumerate() {
        if b.id.index() != bi {
            return Err(err(format!("block at index {bi} has id {}", b.id)));
        }
        for (ii, inst) in b.insts.iter().enumerate() {
            let at = format!("bb{bi}[{ii}]");
            // Result arity matches the op kind.
            match (inst.result, inst.op.has_result()) {
                (None, true) => return Err(err(format!("{at}: op result dropped"))),
                (Some(_), false) => return Err(err(format!("{at}: result on void op"))),
                _ => {}
            }
            if let Some(r) = inst.result {
                if r.index() >= f.vreg_types.len() {
                    return Err(err(format!("{at}: result {r} out of range")));
                }
                let want = result_type(f, &inst.op);
                if let Some(want) = want {
                    let got = f.vreg_types[r.index()];
                    if got != want {
                        return Err(err(format!(
                            "{at}: result {r} has type {got}, op produces {want}"
                        )));
                    }
                }
            }
            let mut op_err = None;
            inst.op.for_each_operand(|o| {
                if let Operand::Reg(r) = o {
                    if r.index() >= f.vreg_types.len() {
                        op_err = Some(format!("{at}: operand {r} out of range"));
                    }
                }
            });
            if let Some(e) = op_err {
                return Err(err(e));
            }
            // Space-specific checks.
            match &inst.op {
                Op::Gep {
                    base: Operand::Reg(r),
                    space,
                    ..
                } if f.vreg_types[r.index()] != Type::Ptr(*space) => {
                    return Err(err(format!(
                        "{at}: gep base {r} is {}, expected ptr<{space}>",
                        f.vreg_types[r.index()]
                    )));
                }
                Op::Load { ptr, space, .. }
                | Op::Store { ptr, space, .. }
                | Op::AtomicRmw { ptr, space, .. } => {
                    if let Operand::Reg(r) = ptr {
                        if f.vreg_types[r.index()] != Type::Ptr(*space) {
                            return Err(err(format!(
                                "{at}: memory op pointer {r} is {}, expected ptr<{space}>",
                                f.vreg_types[r.index()]
                            )));
                        }
                    }
                }
                Op::LocalAddr(id) if id.index() >= f.local_arrays.len() => {
                    return Err(err(format!("{at}: local array #{} undeclared", id.0)));
                }
                _ => {}
            }
        }
        // Terminator targets in range.
        match &b.term {
            Terminator::Br { target } => {
                if target.index() >= n_blocks {
                    return Err(err(format!("bb{bi}: branch target {target} out of range")));
                }
            }
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                for t in [then_bb, else_bb] {
                    if t.index() >= n_blocks {
                        return Err(err(format!("bb{bi}: branch target {t} out of range")));
                    }
                }
            }
            Terminator::Ret => {}
        }
    }
    Ok(())
}

/// Result type of an op, or `None` when the op's declared register type is
/// authoritative (e.g. `Mov` used for int<->bool coercion by the front end).
fn result_type(_f: &Function, op: &Op) -> Option<Type> {
    Some(match op {
        Op::Bin { ty, .. } | Op::Select { ty, .. } => Type::Scalar(*ty),
        Op::Cmp { .. } => Type::Scalar(Scalar::Bool),
        Op::Un { op, ty, .. } => Type::Scalar(match op {
            crate::inst::UnOp::F2I => Scalar::I32,
            crate::inst::UnOp::I2F | crate::inst::UnOp::U2F => Scalar::F32,
            // IntCast moves bits between integer/bool types; the declared
            // destination type is authoritative.
            crate::inst::UnOp::IntCast => return None,
            _ => *ty,
        }),
        // Mov is also used by the front end for int<->bool coercion, so the
        // destination register's declared type is authoritative.
        Op::Mov { .. } => return None,
        Op::Gep { space, .. } => Type::Ptr(*space),
        Op::Load { ty, .. } | Op::AtomicRmw { ty, .. } => Type::Scalar(*ty),
        Op::WorkItem(_) => Type::Scalar(Scalar::U32),
        Op::LocalAddr(_) => Type::Ptr(crate::types::AddressSpace::Local),
        Op::Store { .. } | Op::Barrier | Op::Printf { .. } => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::{BlockId, Param};
    use crate::inst::Inst;
    use crate::types::AddressSpace;
    use crate::value::{Operand, VReg};
    use crate::{BinOp, Builtin};

    fn ok_kernel() -> Function {
        let mut b = FunctionBuilder::new(
            "k",
            vec![Param {
                name: "a".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let gid = b.workitem(Builtin::GlobalId(0));
        let p = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v = b.load(p.into(), Scalar::F32, AddressSpace::Global);
        let w = b.bin(BinOp::Add, Scalar::F32, v.into(), v.into());
        b.store(p.into(), w.into(), Scalar::F32, AddressSpace::Global);
        b.ret();
        b.finish()
    }

    #[test]
    fn valid_kernel_passes() {
        verify_function(&ok_kernel()).unwrap();
    }

    #[test]
    fn bad_branch_target_rejected() {
        let mut f = ok_kernel();
        f.blocks[0].term = Terminator::Br {
            target: BlockId(99),
        };
        let e = verify_function(&f).unwrap_err();
        assert!(e.detail.contains("out of range"), "{e}");
    }

    #[test]
    fn out_of_range_operand_rejected() {
        let mut f = ok_kernel();
        f.blocks[0].insts[3] = Inst {
            result: Some(VReg(4)),
            op: Op::Bin {
                op: BinOp::Add,
                ty: Scalar::F32,
                a: Operand::Reg(VReg(77)),
                b: Operand::imm_f32(0.0),
            },
        };
        assert!(verify_function(&f).is_err());
    }

    #[test]
    fn wrong_pointer_space_rejected() {
        let mut f = ok_kernel();
        // Rewrite the load to claim the pointer is local.
        if let Op::Load { space, .. } = &mut f.blocks[0].insts[2].op {
            *space = AddressSpace::Local;
        }
        let e = verify_function(&f).unwrap_err();
        assert!(e.detail.contains("expected ptr<local>"), "{e}");
    }

    #[test]
    fn dropped_result_rejected() {
        let mut f = ok_kernel();
        f.blocks[0].insts[0].result = None;
        let e = verify_function(&f).unwrap_err();
        assert!(e.detail.contains("result dropped"), "{e}");
    }

    #[test]
    fn undeclared_local_array_rejected() {
        let mut b = FunctionBuilder::new("k", vec![]);
        // Bypass the builder's checks by pushing a raw LocalAddr.
        let r = b.fresh(Type::Ptr(AddressSpace::Local));
        b.push_into(r, Op::LocalAddr(crate::LocalArrayId(3)));
        b.ret();
        let f = b.finish();
        let e = verify_function(&f).unwrap_err();
        assert!(e.detail.contains("undeclared"), "{e}");
    }

    #[test]
    fn module_verify_reports_kernel_name() {
        let mut f = ok_kernel();
        f.name = "broken".into();
        f.blocks[0].term = Terminator::Br { target: BlockId(9) };
        let m = Module { kernels: vec![f] };
        let e = verify_module(&m).unwrap_err();
        assert_eq!(e.kernel, "broken");
    }

    #[test]
    fn result_type_mismatch_rejected() {
        let mut f = ok_kernel();
        // Claim the compare-free f32 add writes into the u32 gid register.
        f.blocks[0].insts[3].result = Some(VReg(1));
        let e = verify_function(&f).unwrap_err();
        assert!(e.detail.contains("op produces"), "{e}");
    }
}
