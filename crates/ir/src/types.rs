//! Scalar and pointer types for the kernel IR.

use std::fmt;

/// Scalar value types. OpenCL `int`/`uint`/`float`/`bool` map directly;
/// `char`/`short` are widened to `I32` by the front end (the benchmarks in
/// the suite only need byte loads, which are expressed as `I32` loads with
/// element size 1 at the access site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer.
    U32,
    /// 32-bit IEEE-754 float.
    F32,
    /// Boolean (stored as 0/1 in an integer register).
    Bool,
}

impl Scalar {
    /// Width of the scalar in bytes when stored to memory.
    pub fn bytes(self) -> u32 {
        4
    }

    /// True for the two integer types (signed or unsigned).
    pub fn is_int(self) -> bool {
        matches!(self, Scalar::I32 | Scalar::U32)
    }

    /// True for `F32`.
    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F32)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scalar::I32 => "i32",
            Scalar::U32 => "u32",
            Scalar::F32 => "f32",
            Scalar::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// OpenCL address spaces relevant to the paper's comparison.
///
/// * `Global` — off-chip memory (DDR4 on the SX2800, HBM2 on the MX2100).
///   Each *access site* to global memory is what the Intel HLS flow turns
///   into a load-store unit, the key driver of the paper's Table II/III BRAM
///   numbers.
/// * `Local` — on-chip work-group memory (BRAM on the FPGA, per-core shared
///   memory on Vortex).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpace {
    /// `__global` — device DRAM.
    Global,
    /// `__local` — work-group shared memory.
    Local,
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AddressSpace::Global => "global",
            AddressSpace::Local => "local",
        })
    }
}

/// Type of a virtual register or kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar value.
    Scalar(Scalar),
    /// A pointer into the given address space. Pointers are untyped at the
    /// type level; loads and stores carry the accessed scalar type.
    Ptr(AddressSpace),
}

impl Type {
    /// Convenience constructor for `Type::Scalar(Scalar::I32)` etc.
    pub fn scalar(s: Scalar) -> Self {
        Type::Scalar(s)
    }

    /// Returns the scalar type, panicking on pointers (verifier-checked IR
    /// never hits the panic).
    pub fn expect_scalar(self) -> Scalar {
        match self {
            Type::Scalar(s) => s,
            Type::Ptr(space) => panic!("expected scalar type, found ptr<{space}>"),
        }
    }

    /// True if this is a pointer type.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Ptr(space) => write!(f, "ptr<{space}>"),
        }
    }
}

impl From<Scalar> for Type {
    fn from(s: Scalar) -> Self {
        Type::Scalar(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_widths_are_four_bytes() {
        for s in [Scalar::I32, Scalar::U32, Scalar::F32, Scalar::Bool] {
            assert_eq!(s.bytes(), 4);
        }
    }

    #[test]
    fn scalar_class_predicates() {
        assert!(Scalar::I32.is_int());
        assert!(Scalar::U32.is_int());
        assert!(!Scalar::F32.is_int());
        assert!(Scalar::F32.is_float());
        assert!(!Scalar::Bool.is_float());
    }

    #[test]
    fn type_display_is_stable() {
        assert_eq!(Type::Scalar(Scalar::F32).to_string(), "f32");
        assert_eq!(Type::Ptr(AddressSpace::Global).to_string(), "ptr<global>");
        assert_eq!(Type::Ptr(AddressSpace::Local).to_string(), "ptr<local>");
    }

    #[test]
    #[should_panic(expected = "expected scalar")]
    fn expect_scalar_panics_on_ptr() {
        Type::Ptr(AddressSpace::Global).expect_scalar();
    }
}
