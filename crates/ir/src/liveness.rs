//! Backward liveness analysis over virtual registers.
//!
//! Consumed by the Vortex code generator's register allocator and by the DCE
//! pass. Sets are dense bitsets — kernels have a few hundred registers at
//! most, so a `Vec<u64>` per block beats hashing (per the perf-book guidance
//! on compiler-shaped workloads).

use crate::cfg::Cfg;
use crate::func::Function;
use crate::value::{Operand, VReg};

/// A dense bitset over virtual registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    /// Empty set sized for `n` registers.
    pub fn new(n: usize) -> Self {
        RegSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub fn insert(&mut self, r: VReg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    pub fn remove(&mut self, r: VReg) {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.words[w] &= !(1 << b);
    }

    pub fn contains(&self, r: VReg) -> bool {
        let (w, b) = (r.index() / 64, r.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VReg> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| VReg((wi * 64 + b) as u32))
        })
    }

    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Per-block liveness results.
#[derive(Debug, Clone)]
pub struct Liveness {
    pub live_in: Vec<RegSet>,
    pub live_out: Vec<RegSet>,
}

impl Liveness {
    /// Compute liveness for `f` given its CFG.
    pub fn compute(f: &Function, cfg: &Cfg) -> Self {
        let n_blocks = f.blocks.len();
        let n_regs = f.num_vregs();
        // Per-block gen (upward-exposed uses) and kill (defs).
        let mut gen = vec![RegSet::new(n_regs); n_blocks];
        let mut kill = vec![RegSet::new(n_regs); n_blocks];
        for (id, b) in f.iter_blocks() {
            let bi = id.index();
            for inst in &b.insts {
                inst.op.for_each_operand(|o| {
                    if let Operand::Reg(r) = o {
                        if !kill[bi].contains(r) {
                            gen[bi].insert(r);
                        }
                    }
                });
                if let Some(r) = inst.result {
                    kill[bi].insert(r);
                }
            }
            if let crate::inst::Terminator::CondBr {
                cond: Operand::Reg(r),
                ..
            } = &b.term
            {
                if !kill[bi].contains(*r) {
                    gen[bi].insert(*r);
                }
            }
        }
        let mut live_in = vec![RegSet::new(n_regs); n_blocks];
        let mut live_out = vec![RegSet::new(n_regs); n_blocks];
        // Iterate to fixed point in post-order (reverse RPO) for fast
        // convergence of the backward problem.
        let order: Vec<_> = cfg.rpo.iter().rev().copied().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &bb in &order {
                let bi = bb.index();
                let mut out = RegSet::new(n_regs);
                for &s in &cfg.succs[bi] {
                    out.union_with(&live_in[s.index()]);
                }
                if out != live_out[bi] {
                    live_out[bi] = out;
                }
                // in = gen | (out - kill)
                let mut inp = live_out[bi].clone();
                for r in kill[bi].iter() {
                    inp.remove(r);
                }
                inp.union_with(&gen[bi]);
                if inp != live_in[bi] {
                    live_in[bi] = inp;
                    changed = true;
                }
            }
        }
        Liveness { live_in, live_out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Scalar;
    use crate::value::Operand;
    use crate::{BinOp, CmpOp};

    #[test]
    fn regset_basics() {
        let mut s = RegSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(VReg(0)));
        assert!(!s.insert(VReg(0)));
        assert!(s.insert(VReg(129)));
        assert!(s.contains(VReg(129)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![VReg(0), VReg(129)]);
        s.remove(VReg(0));
        assert!(!s.contains(VReg(0)));
    }

    #[test]
    fn regset_union() {
        let mut a = RegSet::new(10);
        let mut b = RegSet::new(10);
        a.insert(VReg(1));
        b.insert(VReg(2));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn loop_carried_value_is_live_around_backedge() {
        // i defined in entry, used and redefined in loop body.
        let mut b = FunctionBuilder::new("k", vec![]);
        let i = b.mov(Scalar::I32, Operand::imm_i32(0));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let c = b.cmp(CmpOp::Lt, Scalar::I32, i.into(), Operand::imm_i32(10));
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let i2 = b.bin(BinOp::Add, Scalar::I32, i.into(), Operand::imm_i32(1));
        b.assign(i, Scalar::I32, i2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        // i is live into the loop head and around the backedge.
        assert!(lv.live_in[1].contains(i));
        assert!(lv.live_out[2].contains(i));
        // i2 is consumed within the body.
        assert!(!lv.live_out[2].contains(i2));
    }

    #[test]
    fn dead_value_not_live_anywhere() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let dead = b.mov(Scalar::I32, Operand::imm_i32(42));
        b.ret();
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::compute(&f, &cfg);
        assert!(!lv.live_in[0].contains(dead));
        assert!(!lv.live_out[0].contains(dead));
    }
}
