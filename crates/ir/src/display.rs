//! Human-readable IR printer, used in error messages, golden tests and the
//! `quickstart` example.

use crate::func::Function;
use crate::inst::{Op, Terminator};
use std::fmt;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel @{}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "%{i}: {} /*{}*/", p.ty, p.name)?;
        }
        writeln!(f, ") {{")?;
        for a in &self.local_arrays {
            writeln!(f, "  local {}: [{}; {}]", a.name, a.elem, a.len)?;
        }
        for (id, b) in self.iter_blocks() {
            writeln!(f, "{id}:")?;
            for inst in &b.insts {
                write!(f, "  ")?;
                if let Some(r) = inst.result {
                    write!(f, "{r} = ")?;
                }
                writeln!(f, "{}", OpDisplay(&inst.op))?;
            }
            match &b.term {
                Terminator::Br { target } => writeln!(f, "  br {target}")?,
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => writeln!(f, "  br {cond}, {then_bb}, {else_bb}")?,
                Terminator::Ret => writeln!(f, "  ret")?,
            }
        }
        writeln!(f, "}}")
    }
}

struct OpDisplay<'a>(&'a Op);

impl fmt::Display for OpDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Op::Bin { op, ty, a, b } => write!(f, "{op}.{ty} {a}, {b}"),
            Op::Un { op, ty, a } => write!(f, "{op}.{ty} {a}"),
            Op::Cmp { op, ty, a, b } => write!(f, "cmp.{op}.{ty} {a}, {b}"),
            Op::Select { ty, cond, a, b } => write!(f, "select.{ty} {cond}, {a}, {b}"),
            Op::Mov { ty, a } => write!(f, "mov.{ty} {a}"),
            Op::Gep {
                base,
                index,
                elem_bytes,
                space,
            } => write!(f, "gep.{space} {base}, {index}, x{elem_bytes}"),
            Op::Load {
                ptr,
                ty,
                space,
                hint,
            } => {
                let h = match hint {
                    crate::inst::LoadHint::BurstCoalesced => "",
                    crate::inst::LoadHint::Pipelined => " !pipelined",
                };
                write!(f, "load.{ty}.{space} {ptr}{h}")
            }
            Op::Store {
                ptr,
                value,
                ty,
                space,
            } => write!(f, "store.{ty}.{space} {ptr}, {value}"),
            Op::AtomicRmw {
                op,
                ptr,
                value,
                ty,
                space,
            } => write!(f, "atomic.{op:?}.{ty}.{space} {ptr}, {value}"),
            Op::WorkItem(b) => write!(f, "{b:?}"),
            Op::LocalAddr(id) => write!(f, "local_addr #{}", id.0),
            Op::Barrier => write!(f, "barrier"),
            Op::Printf { fmt: s, args } => {
                write!(f, "printf {s:?}")?;
                for (a, t) in args {
                    write!(f, ", {a}:{t}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::func::Param;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::Operand;
    use crate::{BinOp, Builtin};

    #[test]
    fn display_contains_structure() {
        let mut b = FunctionBuilder::new(
            "vecadd",
            vec![Param {
                name: "a".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let gid = b.workitem(Builtin::GlobalId(0));
        let p = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v = b.load(p.into(), Scalar::F32, AddressSpace::Global);
        let w = b.bin(BinOp::Add, Scalar::F32, v.into(), Operand::imm_f32(1.0));
        b.store(p.into(), w.into(), Scalar::F32, AddressSpace::Global);
        b.ret();
        let f = b.finish();
        let s = f.to_string();
        assert!(s.contains("kernel @vecadd"), "got:\n{s}");
        assert!(s.contains("load.f32.global"), "got:\n{s}");
        assert!(s.contains("store.f32.global"), "got:\n{s}");
        assert!(s.contains("add.f32"), "got:\n{s}");
        assert!(s.contains("ret"), "got:\n{s}");
    }
}
