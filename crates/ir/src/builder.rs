//! Convenience builder for constructing IR functions.
//!
//! Used by the front end's lowering stage and by tests that hand-build IR.

use crate::func::{Block, BlockId, Function, LocalArray, LocalArrayId, Param};
use crate::inst::{AtomicOp, BinOp, Builtin, CmpOp, Inst, LoadHint, Op, Terminator, UnOp};
use crate::types::{AddressSpace, Scalar, Type};
use crate::value::{Operand, VReg};

/// Incrementally builds a [`Function`]. Blocks are created with
/// [`FunctionBuilder::new_block`] and selected with
/// [`FunctionBuilder::switch_to`]; instructions append to the current block.
pub struct FunctionBuilder {
    name: String,
    params: Vec<Param>,
    vreg_types: Vec<Type>,
    local_arrays: Vec<LocalArray>,
    blocks: Vec<PendingBlock>,
    current: BlockId,
}

struct PendingBlock {
    insts: Vec<Inst>,
    term: Option<Terminator>,
}

impl FunctionBuilder {
    /// Start a new function. Registers `0..params.len()` are pre-allocated
    /// for the parameters; block 0 (the entry) is created and selected.
    pub fn new(name: impl Into<String>, params: Vec<Param>) -> Self {
        let vreg_types = params.iter().map(|p| p.ty).collect();
        FunctionBuilder {
            name: name.into(),
            params,
            vreg_types,
            local_arrays: Vec::new(),
            blocks: vec![PendingBlock {
                insts: Vec::new(),
                term: None,
            }],
            current: BlockId(0),
        }
    }

    /// Register holding parameter `i`.
    pub fn param(&self, i: usize) -> VReg {
        assert!(i < self.params.len(), "parameter index out of range");
        VReg(i as u32)
    }

    /// Allocate a fresh virtual register of the given type.
    pub fn fresh(&mut self, ty: impl Into<Type>) -> VReg {
        let r = VReg(self.vreg_types.len() as u32);
        self.vreg_types.push(ty.into());
        r
    }

    /// Declare a `__local` array and return its id.
    pub fn local_array(&mut self, name: impl Into<String>, elem: Scalar, len: u32) -> LocalArrayId {
        let id = LocalArrayId(self.local_arrays.len() as u32);
        self.local_arrays.push(LocalArray {
            name: name.into(),
            elem,
            len,
        });
        id
    }

    /// Create a new (empty, unselected) block.
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(PendingBlock {
            insts: Vec::new(),
            term: None,
        });
        id
    }

    /// Select the block subsequent instructions append to.
    pub fn switch_to(&mut self, id: BlockId) {
        self.current = id;
    }

    /// Currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// True if the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        self.blocks[self.current.index()].term.is_some()
    }

    /// Append an instruction with a fresh result register of type `ty`.
    pub fn push(&mut self, op: Op, ty: impl Into<Type>) -> VReg {
        let r = self.fresh(ty);
        self.push_into(r, op);
        r
    }

    /// Append an instruction writing to an existing register (mutation).
    pub fn push_into(&mut self, result: VReg, op: Op) {
        debug_assert!(op.has_result(), "op has no result to assign");
        self.cur().insts.push(Inst {
            result: Some(result),
            op,
        });
    }

    /// Append a result-less instruction.
    pub fn push_void(&mut self, op: Op) {
        debug_assert!(!op.has_result(), "op result would be dropped");
        self.cur().insts.push(Inst { result: None, op });
    }

    fn cur(&mut self) -> &mut PendingBlock {
        let c = self.current.index();
        let b = &mut self.blocks[c];
        debug_assert!(b.term.is_none(), "appending to a terminated block");
        b
    }

    // ---- typed helpers -------------------------------------------------

    pub fn bin(&mut self, op: BinOp, ty: Scalar, a: Operand, b: Operand) -> VReg {
        self.push(Op::Bin { op, ty, a, b }, ty)
    }

    pub fn un(&mut self, op: UnOp, ty: Scalar, a: Operand) -> VReg {
        let result_ty = match op {
            UnOp::F2I => Scalar::I32,
            UnOp::I2F | UnOp::U2F => Scalar::F32,
            _ => ty,
        };
        self.push(Op::Un { op, ty, a }, result_ty)
    }

    pub fn cmp(&mut self, op: CmpOp, ty: Scalar, a: Operand, b: Operand) -> VReg {
        self.push(Op::Cmp { op, ty, a, b }, Scalar::Bool)
    }

    pub fn select(&mut self, ty: Scalar, cond: Operand, a: Operand, b: Operand) -> VReg {
        self.push(Op::Select { ty, cond, a, b }, ty)
    }

    pub fn mov(&mut self, ty: Scalar, a: Operand) -> VReg {
        self.push(Op::Mov { ty, a }, ty)
    }

    /// Assign to an existing register (used for mutable user variables).
    pub fn assign(&mut self, dest: VReg, ty: Scalar, a: Operand) {
        self.push_into(dest, Op::Mov { ty, a });
    }

    pub fn gep(
        &mut self,
        base: Operand,
        index: Operand,
        elem_bytes: u32,
        space: AddressSpace,
    ) -> VReg {
        self.push(
            Op::Gep {
                base,
                index,
                elem_bytes,
                space,
            },
            Type::Ptr(space),
        )
    }

    pub fn load(&mut self, ptr: Operand, ty: Scalar, space: AddressSpace) -> VReg {
        self.load_hinted(ptr, ty, space, LoadHint::default())
    }

    pub fn load_hinted(
        &mut self,
        ptr: Operand,
        ty: Scalar,
        space: AddressSpace,
        hint: LoadHint,
    ) -> VReg {
        self.push(
            Op::Load {
                ptr,
                ty,
                space,
                hint,
            },
            ty,
        )
    }

    pub fn store(&mut self, ptr: Operand, value: Operand, ty: Scalar, space: AddressSpace) {
        self.push_void(Op::Store {
            ptr,
            value,
            ty,
            space,
        });
    }

    pub fn atomic(
        &mut self,
        op: AtomicOp,
        ptr: Operand,
        value: Operand,
        ty: Scalar,
        space: AddressSpace,
    ) -> VReg {
        self.push(
            Op::AtomicRmw {
                op,
                ptr,
                value,
                ty,
                space,
            },
            ty,
        )
    }

    pub fn workitem(&mut self, b: Builtin) -> VReg {
        self.push(Op::WorkItem(b), Scalar::U32)
    }

    pub fn local_addr(&mut self, id: LocalArrayId) -> VReg {
        self.push(Op::LocalAddr(id), Type::Ptr(AddressSpace::Local))
    }

    pub fn barrier(&mut self) {
        self.push_void(Op::Barrier);
    }

    pub fn printf(&mut self, fmt: impl Into<String>, args: Vec<(Operand, Scalar)>) {
        self.push_void(Op::Printf {
            fmt: fmt.into(),
            args,
        });
    }

    // ---- terminators ---------------------------------------------------

    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br { target });
    }

    pub fn cond_br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    pub fn ret(&mut self) {
        self.terminate(Terminator::Ret);
    }

    fn terminate(&mut self, t: Terminator) {
        let c = self.current.index();
        let b = &mut self.blocks[c];
        assert!(b.term.is_none(), "block {c} terminated twice");
        b.term = Some(t);
    }

    /// Finish the function. Panics if any block lacks a terminator.
    pub fn finish(self) -> Function {
        let blocks = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, pb)| Block {
                id: BlockId(i as u32),
                insts: pb.insts,
                term: pb
                    .term
                    .unwrap_or_else(|| panic!("block bb{i} has no terminator")),
            })
            .collect();
        Function {
            name: self.name,
            params: self.params,
            vreg_types: self.vreg_types,
            local_arrays: self.local_arrays,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_branchy_function() {
        let mut b = FunctionBuilder::new("f", vec![]);
        let x = b.workitem(Builtin::GlobalId(0));
        let c = b.cmp(CmpOp::Lt, Scalar::U32, x.into(), Operand::imm_u32(10));
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(c.into(), t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(
            f.blocks[0].term.successors().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(2)]
        );
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn unterminated_block_panics() {
        let b = FunctionBuilder::new("f", vec![]);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "terminated twice")]
    fn double_terminator_panics() {
        let mut b = FunctionBuilder::new("f", vec![]);
        b.ret();
        b.ret();
    }

    #[test]
    fn fresh_registers_after_params() {
        let mut b = FunctionBuilder::new(
            "f",
            vec![Param {
                name: "p".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        assert_eq!(b.param(0), VReg(0));
        let r = b.fresh(Scalar::I32);
        assert_eq!(r, VReg(1));
        b.ret();
        let f = b.finish();
        assert_eq!(f.num_vregs(), 2);
    }
}
