//! Control-flow-graph utilities: successor/predecessor maps, reverse
//! post-order, dominators and post-dominators.
//!
//! Post-dominators feed the control-dependence computation the divergence
//! analysis needs to decide which branches require the Vortex SPLIT/JOIN/PRED
//! lowering (paper §II-D).

use crate::func::{BlockId, Function};

/// Precomputed CFG edge information for a function.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub succs: Vec<Vec<BlockId>>,
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse post-order from the entry. Unreachable blocks are
    /// excluded.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo`; `usize::MAX` for unreachable blocks.
    pub rpo_index: Vec<usize>,
}

impl Cfg {
    /// Build the CFG for a function.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (id, b) in f.iter_blocks() {
            for s in b.term.successors() {
                succs[id.index()].push(s);
                preds[s.index()].push(id);
            }
        }
        // Iterative DFS producing post-order, then reverse it.
        let mut post = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()] != usize::MAX
    }
}

/// Immediate-dominator tree computed with the Cooper–Harvey–Kennedy
/// algorithm. `idom[entry] == entry`; unreachable blocks map to `None`.
#[derive(Debug, Clone)]
pub struct Dominators {
    pub idom: Vec<Option<BlockId>>,
}

impl Dominators {
    /// Compute dominators over the forward CFG.
    pub fn new(cfg: &Cfg) -> Self {
        Self::compute(&cfg.rpo, &cfg.rpo_index, &cfg.preds, cfg.succs.len())
    }

    fn compute(rpo: &[BlockId], rpo_index: &[usize], preds: &[Vec<BlockId>], n: usize) -> Self {
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        if rpo.is_empty() {
            return Dominators { idom };
        }
        let entry = rpo[0];
        idom[entry.index()] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, rpo_index, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom }
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.index()] > rpo_index[b.index()] {
            a = idom[a.index()].expect("idom set for processed block");
        }
        while rpo_index[b.index()] > rpo_index[a.index()] {
            b = idom[b.index()].expect("idom set for processed block");
        }
    }
    a
}

/// Post-dominator tree. Computed by running the dominator algorithm on the
/// reversed CFG rooted at the (single) exit. Functions produced by the front
/// end always have exactly one `Ret` block; the builder API permits several,
/// in which case a virtual exit joins them.
#[derive(Debug, Clone)]
pub struct PostDominators {
    /// Immediate post-dominator; the virtual exit is represented as `None`
    /// parent for exit blocks.
    ipdom: Vec<Option<BlockId>>,
    exits: Vec<BlockId>,
}

impl PostDominators {
    /// Compute post-dominators for `f`.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        // Reverse CFG with a virtual exit node at index n.
        let mut rsuccs: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
        let mut rpreds: Vec<Vec<BlockId>> = vec![Vec::new(); n + 1];
        let virt = BlockId(n as u32);
        let mut exits = Vec::new();
        for (id, _) in f.iter_blocks() {
            if !cfg.is_reachable(id) {
                continue;
            }
            if cfg.succs[id.index()].is_empty() {
                exits.push(id);
                // Edge exit -> virtual in reverse graph means virtual -> exit.
                rsuccs[virt.index()].push(id);
                rpreds[id.index()].push(virt);
            }
            for &s in &cfg.succs[id.index()] {
                rsuccs[s.index()].push(id);
                rpreds[id.index()].push(s);
            }
        }
        // RPO over reversed graph from virtual exit.
        let mut post = Vec::with_capacity(n + 1);
        let mut state = vec![0u8; n + 1];
        let mut stack: Vec<(BlockId, usize)> = vec![(virt, 0)];
        state[virt.index()] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < rsuccs[b.index()].len() {
                let s = rsuccs[b.index()][*i];
                *i += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n + 1];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let doms = Dominators::compute(&rpo, &rpo_index, &rpreds, n + 1);
        let ipdom = doms.idom[..n]
            .iter()
            .map(|d| d.filter(|b| b.index() < n))
            .collect();
        PostDominators { ipdom, exits }
    }

    /// Immediate post-dominator of `b` (`None` if it is the virtual exit).
    pub fn ipdom(&self, b: BlockId) -> Option<BlockId> {
        self.ipdom[b.index()]
    }

    /// Exit blocks of the function.
    pub fn exits(&self) -> &[BlockId] {
        &self.exits
    }

    /// True if `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.ipdom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::value::Operand;

    /// Build a diamond: bb0 -> {bb1, bb2} -> bb3.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![]);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.cond_br(Operand::imm_i32(1), t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret();
        b.finish()
    }

    #[test]
    fn diamond_cfg_edges() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs[0], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds[3], vec![BlockId(1), BlockId(2)]);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(*cfg.rpo.last().unwrap(), BlockId(3));
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert_eq!(dom.idom[3], Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn diamond_post_dominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let pdom = PostDominators::new(&f, &cfg);
        // Join block post-dominates the branch.
        assert_eq!(pdom.ipdom(BlockId(0)), Some(BlockId(3)));
        assert!(pdom.post_dominates(BlockId(3), BlockId(0)));
        assert!(!pdom.post_dominates(BlockId(1), BlockId(0)));
        assert_eq!(pdom.exits(), &[BlockId(3)]);
    }

    #[test]
    fn loop_post_dominators() {
        // bb0 -> bb1 (head) -> {bb2 (body) -> bb1, bb3 (exit)}
        let mut b = FunctionBuilder::new("l", vec![]);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        b.cond_br(Operand::imm_i32(1), body, exit);
        b.switch_to(body);
        b.br(head);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let pdom = PostDominators::new(&f, &cfg);
        assert_eq!(pdom.ipdom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdom.ipdom(BlockId(2)), Some(BlockId(1)));
    }

    #[test]
    fn unreachable_block_excluded_from_rpo() {
        let mut b = FunctionBuilder::new("u", vec![]);
        let dead = b.new_block();
        b.ret();
        b.switch_to(dead);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo.len(), 1);
    }
}
