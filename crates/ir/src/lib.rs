//! `ocl-ir` — the kernel intermediate representation shared by both tool flows.
//!
//! This crate is the analogue of the LLVM-IR layer in the paper's Figure 2:
//! both the HLS flow (`hls-flow`) and the soft-GPU flow (`vortex-cc`) consume
//! the same IR produced by the OpenCL front end (`ocl-front`), mirroring how
//! the paper feeds *identical kernel source* through the Intel AOC compiler
//! and the Vortex/PoCL compiler.
//!
//! Design notes:
//! * The IR is a register-machine IR with *mutable* virtual registers rather
//!   than SSA — assignments may re-define a register. This keeps front-end
//!   lowering and back-end code generation simple while still supporting the
//!   analyses the paper's results depend on (divergence analysis for the
//!   Vortex SPLIT/JOIN/PRED lowering, access-site classification for the HLS
//!   LSU/area model, and the O1 "variable reuse" load-dedup pass).
//! * Memory is explicit: address arithmetic uses [`inst::Op::Gep`] so that
//!   the HLS flow can classify each access site's pattern (thread-affine vs
//!   computed) the way the Intel SDK's load-store-unit inference does.
//! * A reference NDRange interpreter ([`interp`]) defines the functional
//!   semantics. It is the golden model every back end is tested against.

pub mod builder;
pub mod cfg;
pub mod display;
pub mod divergence;
pub mod func;
pub mod inst;
pub mod interp;
pub mod liveness;
pub mod loops;
pub mod passes;
pub mod types;
pub mod value;
pub mod verify;

pub use builder::FunctionBuilder;
pub use func::{Block, BlockId, Function, Kernel, LocalArray, LocalArrayId, Module, Param};
pub use inst::{AtomicOp, BinOp, Builtin, CmpOp, Inst, LoadHint, Op, Terminator, UnOp};
pub use types::{AddressSpace, Scalar, Type};
pub use value::{Const, Operand, VReg};
