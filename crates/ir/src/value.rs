//! Virtual registers, constants and operands.

use crate::types::Scalar;
use std::fmt;

/// A virtual register. Registers are function-scoped and *mutable*: the IR is
/// not SSA, so a register may be assigned by several instructions (e.g. loop
/// induction variables). Register 0..N map 1:1 to the kernel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl VReg {
    /// Index into per-register side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    I32(i32),
    U32(u32),
    F32(f32),
    Bool(bool),
}

impl Const {
    /// Scalar type of the constant.
    pub fn scalar(self) -> Scalar {
        match self {
            Const::I32(_) => Scalar::I32,
            Const::U32(_) => Scalar::U32,
            Const::F32(_) => Scalar::F32,
            Const::Bool(_) => Scalar::Bool,
        }
    }

    /// Raw 32-bit pattern used when the constant is materialized.
    pub fn bits(self) -> u32 {
        match self {
            Const::I32(v) => v as u32,
            Const::U32(v) => v,
            Const::F32(v) => v.to_bits(),
            Const::Bool(v) => v as u32,
        }
    }

    /// True if this is the integer/bool zero or float +0.0.
    pub fn is_zero(self) -> bool {
        match self {
            Const::I32(v) => v == 0,
            Const::U32(v) => v == 0,
            Const::F32(v) => v == 0.0,
            Const::Bool(v) => !v,
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::I32(v) => write!(f, "{v}i32"),
            Const::U32(v) => write!(f, "{v}u32"),
            Const::F32(v) => write!(f, "{v}f32"),
            Const::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// An instruction operand: either a virtual register or an inline constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    Reg(VReg),
    Const(Const),
}

impl Operand {
    /// Shorthand for an `i32` immediate.
    pub fn imm_i32(v: i32) -> Self {
        Operand::Const(Const::I32(v))
    }

    /// Shorthand for a `u32` immediate.
    pub fn imm_u32(v: u32) -> Self {
        Operand::Const(Const::U32(v))
    }

    /// Shorthand for an `f32` immediate.
    pub fn imm_f32(v: f32) -> Self {
        Operand::Const(Const::F32(v))
    }

    /// The register, if this operand is one.
    pub fn as_reg(self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Const(_) => None,
        }
    }

    /// The constant, if this operand is one.
    pub fn as_const(self) -> Option<Const> {
        match self {
            Operand::Reg(_) => None,
            Operand::Const(c) => Some(c),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<Const> for Operand {
    fn from(c: Const) -> Self {
        Operand::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_bits_roundtrip_float() {
        let c = Const::F32(1.5);
        assert_eq!(f32::from_bits(c.bits()), 1.5);
    }

    #[test]
    fn const_zero_detection() {
        assert!(Const::I32(0).is_zero());
        assert!(Const::F32(0.0).is_zero());
        assert!(Const::Bool(false).is_zero());
        assert!(!Const::U32(7).is_zero());
    }

    #[test]
    fn operand_accessors() {
        let r = Operand::Reg(VReg(3));
        assert_eq!(r.as_reg(), Some(VReg(3)));
        assert_eq!(r.as_const(), None);
        let c = Operand::imm_i32(-4);
        assert_eq!(c.as_const(), Some(Const::I32(-4)));
        assert_eq!(c.as_reg(), None);
    }

    #[test]
    fn const_scalar_types() {
        assert_eq!(Const::I32(1).scalar(), Scalar::I32);
        assert_eq!(Const::U32(1).scalar(), Scalar::U32);
        assert_eq!(Const::F32(1.0).scalar(), Scalar::F32);
        assert_eq!(Const::Bool(true).scalar(), Scalar::Bool);
    }
}
