//! Natural-loop detection over the dominator tree.
//!
//! Feeds the loop tier of the pass pipeline (LICM, strength reduction,
//! bounded unrolling). A *natural loop* is identified by a back edge
//! `u -> h` where `h` dominates `u`; its body is every block that can reach
//! the latch `u` without passing through the header `h`. Back edges sharing
//! a header are merged into one loop, matching the classical definition.

use crate::cfg::{Cfg, Dominators};
use crate::func::{BlockId, Function};

/// One natural loop of a function.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The unique entry block of the loop (target of the back edges).
    pub header: BlockId,
    /// Sources of the back edges into `header`.
    pub latches: Vec<BlockId>,
    /// Every block of the loop, including the header, sorted by id.
    pub body: Vec<BlockId>,
    /// Blocks outside the loop that are branched to from inside, sorted.
    pub exits: Vec<BlockId>,
}

impl Loop {
    /// Whether `b` belongs to the loop body (header included).
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.binary_search(&b).is_ok()
    }

    /// Total instruction count of the body blocks (excluding terminators).
    pub fn num_insts(&self, f: &Function) -> usize {
        self.body.iter().map(|&b| f.block(b).insts.len()).sum()
    }
}

/// All natural loops of a function.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Loops sorted by body size ascending, so iterating visits inner loops
    /// before the loops that enclose them.
    pub loops: Vec<Loop>,
}

impl LoopForest {
    /// Detect the natural loops of `f`.
    pub fn find(f: &Function, cfg: &Cfg, dom: &Dominators) -> Self {
        // Back edges grouped by header.
        let mut latches_of: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
        for (id, b) in f.iter_blocks() {
            if !cfg.is_reachable(id) {
                continue;
            }
            for s in b.term.successors() {
                if dom.dominates(s, id) {
                    latches_of[s.index()].push(id);
                }
            }
        }
        let mut loops = Vec::new();
        for (hi, latches) in latches_of.into_iter().enumerate() {
            if latches.is_empty() {
                continue;
            }
            let header = BlockId(hi as u32);
            // Body: backward reachability from the latches, stopping at the
            // header.
            let mut in_body = vec![false; f.blocks.len()];
            in_body[header.index()] = true;
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if in_body[b.index()] {
                    continue;
                }
                in_body[b.index()] = true;
                for &p in &cfg.preds[b.index()] {
                    work.push(p);
                }
            }
            let body: Vec<BlockId> = (0..f.blocks.len())
                .filter(|&i| in_body[i])
                .map(|i| BlockId(i as u32))
                .collect();
            let mut exits: Vec<BlockId> = body
                .iter()
                .flat_map(|&b| f.block(b).term.successors())
                .filter(|s| !in_body[s.index()])
                .collect();
            exits.sort();
            exits.dedup();
            loops.push(Loop {
                header,
                latches,
                body,
                exits,
            });
        }
        loops.sort_by_key(|l| l.body.len());
        LoopForest { loops }
    }

    /// Loops whose body contains no other loop's header — the candidates for
    /// full unrolling.
    pub fn innermost(&self) -> impl Iterator<Item = &Loop> {
        self.loops.iter().filter(|l| {
            self.loops
                .iter()
                .all(|m| m.header == l.header || !l.contains(m.header))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Scalar;
    use crate::value::Operand;
    use crate::{BinOp, CmpOp};

    /// entry -> outer head -> inner head -> inner body -> inner head (back)
    ///                     \> exit        \> outer latch -> outer head (back)
    fn nested() -> Function {
        let mut b = FunctionBuilder::new("n", vec![]);
        let i = b.mov(Scalar::I32, Operand::imm_i32(0));
        let oh = b.new_block();
        let ih = b.new_block();
        let ib = b.new_block();
        let ol = b.new_block();
        let exit = b.new_block();
        b.br(oh);
        b.switch_to(oh);
        let c = b.cmp(CmpOp::Lt, Scalar::I32, i.into(), Operand::imm_i32(4));
        b.cond_br(c.into(), ih, exit);
        b.switch_to(ih);
        let j = b.mov(Scalar::I32, Operand::imm_i32(0));
        let cj = b.cmp(CmpOp::Lt, Scalar::I32, j.into(), Operand::imm_i32(2));
        b.cond_br(cj.into(), ib, ol);
        b.switch_to(ib);
        let j2 = b.bin(BinOp::Add, Scalar::I32, j.into(), Operand::imm_i32(1));
        b.assign(j, Scalar::I32, j2.into());
        b.br(ih);
        b.switch_to(ol);
        let i2 = b.bin(BinOp::Add, Scalar::I32, i.into(), Operand::imm_i32(1));
        b.assign(i, Scalar::I32, i2.into());
        b.br(oh);
        b.switch_to(exit);
        b.ret();
        b.finish()
    }

    #[test]
    fn finds_nested_loops() {
        let f = nested();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        let forest = LoopForest::find(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        // Sorted inner-first.
        let inner = &forest.loops[0];
        let outer = &forest.loops[1];
        assert_eq!(inner.header, BlockId(2));
        assert_eq!(inner.body, vec![BlockId(2), BlockId(3)]);
        assert_eq!(inner.exits, vec![BlockId(4)]);
        assert_eq!(outer.header, BlockId(1));
        assert!(outer.contains(inner.header));
        assert_eq!(outer.exits, vec![BlockId(5)]);
        let innermost: Vec<_> = forest.innermost().map(|l| l.header).collect();
        assert_eq!(innermost, vec![BlockId(2)]);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = FunctionBuilder::new("s", vec![]);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert!(LoopForest::find(&f, &cfg, &dom).loops.is_empty());
    }
}
