//! Functions (kernels), basic blocks and modules.

use crate::inst::{Inst, Terminator};
use crate::types::{Scalar, Type};
use crate::value::VReg;

/// Identifier of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Identifier of a `__local` array declared in a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalArrayId(pub u32);

impl LocalArrayId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A `__local` array declaration. Multi-dimensional arrays are flattened by
/// the front end; `len` is the total element count.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalArray {
    pub name: String,
    pub elem: Scalar,
    pub len: u32,
}

impl LocalArray {
    /// Total footprint in bytes.
    pub fn bytes(&self) -> u32 {
        self.len * self.elem.bytes()
    }
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: Type,
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub id: BlockId,
    pub insts: Vec<Inst>,
    pub term: Terminator,
}

/// A kernel function in register-machine form.
///
/// Register numbering convention: registers `0..params.len()` hold the kernel
/// arguments on entry; further registers are compiler temporaries and named
/// user variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub params: Vec<Param>,
    /// Type of every virtual register, indexed by `VReg::index`.
    pub vreg_types: Vec<Type>,
    pub local_arrays: Vec<LocalArray>,
    pub blocks: Vec<Block>,
}

/// Alias used where "kernel" reads better than "function".
pub type Kernel = Function;

impl Function {
    /// Entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Number of virtual registers.
    pub fn num_vregs(&self) -> usize {
        self.vreg_types.len()
    }

    /// Type of a register.
    pub fn vreg_type(&self, r: VReg) -> Type {
        self.vreg_types[r.index()]
    }

    /// Shared borrow of a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable borrow of a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterate over `(BlockId, &Block)` in layout order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().map(|b| (b.id, b))
    }

    /// Total instruction count (excluding terminators).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Total `__local` memory footprint in bytes.
    pub fn local_bytes(&self) -> u32 {
        self.local_arrays.iter().map(LocalArray::bytes).sum()
    }

    /// Whether the kernel contains a work-group barrier.
    pub fn uses_barrier(&self) -> bool {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.op, crate::inst::Op::Barrier))
    }

    /// Whether the kernel contains atomic operations.
    pub fn uses_atomics(&self) -> bool {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.op, crate::inst::Op::AtomicRmw { .. }))
    }

    /// Whether the kernel contains device-side printf.
    pub fn uses_printf(&self) -> bool {
        self.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i.op, crate::inst::Op::Printf { .. }))
    }
}

/// A translation unit: one or more kernels (e.g. backprop has two, gaussian
/// has Fan1/Fan2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    pub kernels: Vec<Function>,
}

impl Module {
    /// Look up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&Function> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Look up a kernel by name or panic with a useful message.
    pub fn expect_kernel(&self, name: &str) -> &Function {
        self.kernel(name).unwrap_or_else(|| {
            panic!(
                "kernel `{name}` not found; module has: {:?}",
                self.kernels.iter().map(|k| &k.name).collect::<Vec<_>>()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::AddressSpace;
    use crate::value::Operand;
    use crate::{BinOp, Scalar};

    fn tiny_kernel() -> Function {
        let mut b = FunctionBuilder::new(
            "t",
            vec![Param {
                name: "out".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let gid = b.workitem(crate::Builtin::GlobalId(0));
        let two = b.bin(BinOp::Mul, Scalar::I32, gid.into(), Operand::imm_i32(2));
        let addr = b.gep(Operand::Reg(VReg(0)), gid.into(), 4, AddressSpace::Global);
        b.store(addr.into(), two.into(), Scalar::I32, AddressSpace::Global);
        b.ret();
        b.finish()
    }

    #[test]
    fn function_queries() {
        let f = tiny_kernel();
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.num_insts(), 4);
        assert!(!f.uses_barrier());
        assert!(!f.uses_atomics());
        assert_eq!(f.local_bytes(), 0);
        assert!(f.vreg_type(VReg(0)).is_ptr());
    }

    #[test]
    fn module_lookup() {
        let m = Module {
            kernels: vec![tiny_kernel()],
        };
        assert!(m.kernel("t").is_some());
        assert!(m.kernel("nope").is_none());
        assert_eq!(m.expect_kernel("t").name, "t");
    }

    #[test]
    #[should_panic(expected = "not found")]
    fn module_expect_missing_panics() {
        Module::default().expect_kernel("ghost");
    }

    #[test]
    fn local_array_bytes() {
        let a = LocalArray {
            name: "tile".into(),
            elem: Scalar::F32,
            len: 16 * 16,
        };
        assert_eq!(a.bytes(), 1024);
    }
}
