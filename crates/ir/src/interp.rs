//! Reference NDRange interpreter — the functional golden model.
//!
//! Executes a kernel over an OpenCL NDRange exactly as the specification
//! describes, one work-group at a time. Work-items within a group run
//! round-robin in segments separated by barriers, which gives well-defined
//! results for every barrier-synchronized kernel in the suite.
//!
//! Integer division semantics follow RISC-V (div-by-zero yields all-ones,
//! `INT_MIN / -1` wraps) so that the interpreter and the Vortex simulator
//! agree bit-for-bit and differential tests are meaningful.

use crate::func::{BlockId, Function};
use crate::inst::{AtomicOp, BinOp, Builtin, CmpOp, Op, Terminator, UnOp};
use crate::types::AddressSpace;
use crate::value::{Operand, VReg};

/// Base address of the first allocation in [`Memory`]; keeps address 0
/// unmapped so null-pointer bugs in kernels surface as errors.
pub const GLOBAL_BASE: u32 = 0x1000;
/// Local (work-group) memory window base. Local pointers live here so the
/// interpreter can route them to the per-group buffer.
pub const LOCAL_BASE: u32 = 0x8000_0000;

/// Simple byte-addressed global memory with a bump allocator.
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u8>,
    next: u32,
}

/// Interpreter failure modes.
///
/// These mirror the Vortex simulator's fault set so differential tests can
/// assert that a faulty kernel is *classified the same way* by both
/// backends (see [`From<InterpError> for repro_diag::ReproError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    OutOfBounds {
        addr: u32,
        space: &'static str,
    },
    /// Word access to a non-word-aligned address.
    Misaligned {
        addr: u32,
        space: &'static str,
    },
    /// The bump allocator ran out of backing store.
    OutOfMemory {
        requested: u32,
        available: u32,
    },
    /// Some work-items exited the kernel while others are parked at a
    /// barrier that can now never release — a barrier executed under
    /// divergent control flow.
    BarrierDivergence {
        /// Work-group in which the divergence was detected.
        group: [u32; 3],
        /// How many items finished without reaching the barrier.
        done: u32,
        /// Linearized local ids of the items parked at the barrier.
        waiting: Vec<u32>,
    },
    StepLimit {
        item: [u32; 3],
        limit: u64,
    },
    BadNdRange(String),
    BadArgs(String),
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::OutOfBounds { addr, space } => {
                write!(f, "{space} memory access out of bounds at {addr:#x}")
            }
            InterpError::Misaligned { addr, space } => {
                write!(f, "misaligned {space} word access at {addr:#x}")
            }
            InterpError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "interpreter memory exhausted: requested {requested} bytes, {available} available"
            ),
            InterpError::BarrierDivergence {
                group,
                done,
                waiting,
            } => write!(
                f,
                "divergence deadlock in group {group:?}: {} item(s) parked at a barrier while {done} item(s) already returned",
                waiting.len()
            ),
            InterpError::StepLimit { item, limit } => {
                write!(
                    f,
                    "work-item {item:?} exceeded the step limit of {limit} (infinite loop?)"
                )
            }
            InterpError::BadNdRange(s) => write!(f, "bad ndrange: {s}"),
            InterpError::BadArgs(s) => write!(f, "bad kernel arguments: {s}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<InterpError> for repro_diag::ReproError {
    fn from(e: InterpError) -> Self {
        use repro_diag::{ReproError, StuckWarp};
        match e {
            InterpError::OutOfBounds { addr, space } => ReproError::OutOfBounds {
                addr,
                // The interpreter has no program counter.
                pc: 0,
                space: space.to_string(),
            },
            InterpError::Misaligned { addr, space } => ReproError::Misaligned {
                addr,
                align: 4,
                pc: 0,
                space: space.to_string(),
            },
            InterpError::OutOfMemory {
                requested,
                available,
            } => ReproError::OutOfMemory {
                requested,
                available,
            },
            InterpError::BarrierDivergence { waiting, .. } => {
                let arrived = waiting.len() as u32;
                ReproError::DivergenceDeadlock {
                    // No cores, warps, or PCs here: report each parked
                    // work-item as a stuck "warp" on core 0.
                    stuck: waiting
                        .into_iter()
                        .map(|li| StuckWarp {
                            core: 0,
                            warp: li,
                            pc: 0,
                            barrier: None,
                            arrived,
                        })
                        .collect(),
                }
            }
            InterpError::StepLimit { limit, .. } => ReproError::InstructionBudget { limit },
            InterpError::BadNdRange(s) | InterpError::BadArgs(s) => {
                ReproError::Harness { message: s }
            }
        }
    }
}

impl Memory {
    /// Memory with the given capacity in bytes (plus the unmapped base).
    pub fn new(capacity: u32) -> Self {
        Memory {
            data: vec![0; (GLOBAL_BASE + capacity) as usize],
            next: GLOBAL_BASE,
        }
    }

    /// Allocate `bytes` (16-byte aligned) and return the base address, or
    /// an [`InterpError::OutOfMemory`] when the backing store is exhausted.
    pub fn try_alloc(&mut self, bytes: u32) -> Result<u32, InterpError> {
        let base = self.next;
        let available = (self.data.len() as u32).saturating_sub(base);
        let next = base
            .checked_add(bytes)
            .and_then(|n| n.checked_add(15))
            .map(|n| n & !15)
            .ok_or(InterpError::OutOfMemory {
                requested: bytes,
                available,
            })?;
        if next as usize > self.data.len() {
            return Err(InterpError::OutOfMemory {
                requested: bytes,
                available,
            });
        }
        self.next = next;
        Ok(base)
    }

    /// Allocate `bytes` (16-byte aligned) and return the base address.
    ///
    /// Panics on exhaustion — convenient for tests and examples that size
    /// memory themselves. Harness code that allocates on behalf of a
    /// workload should use [`Memory::try_alloc`] instead.
    pub fn alloc(&mut self, bytes: u32) -> u32 {
        self.try_alloc(bytes).expect("interpreter memory exhausted")
    }

    /// Fallible variant of [`Memory::alloc_u32`].
    pub fn try_alloc_u32(&mut self, init: &[u32]) -> Result<u32, InterpError> {
        let base = self.try_alloc((init.len() * 4) as u32)?;
        for (i, v) in init.iter().enumerate() {
            self.write_u32(base + (i * 4) as u32, *v)?;
        }
        Ok(base)
    }

    /// Allocate and initialize from an `f32` slice.
    pub fn alloc_f32(&mut self, init: &[f32]) -> u32 {
        let base = self.alloc((init.len() * 4) as u32);
        for (i, v) in init.iter().enumerate() {
            self.write_u32(base + (i * 4) as u32, v.to_bits()).unwrap();
        }
        base
    }

    /// Allocate and initialize from an `i32` slice.
    pub fn alloc_i32(&mut self, init: &[i32]) -> u32 {
        let base = self.alloc((init.len() * 4) as u32);
        for (i, v) in init.iter().enumerate() {
            self.write_u32(base + (i * 4) as u32, *v as u32).unwrap();
        }
        base
    }

    /// Allocate and initialize from a `u32` slice.
    pub fn alloc_u32(&mut self, init: &[u32]) -> u32 {
        let base = self.alloc((init.len() * 4) as u32);
        for (i, v) in init.iter().enumerate() {
            self.write_u32(base + (i * 4) as u32, *v).unwrap();
        }
        base
    }

    /// Read `len` floats starting at `addr`.
    pub fn read_f32_slice(&self, addr: u32, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| f32::from_bits(self.read_u32(addr + (i * 4) as u32).unwrap()))
            .collect()
    }

    /// Read `len` i32s starting at `addr`.
    pub fn read_i32_slice(&self, addr: u32, len: usize) -> Vec<i32> {
        (0..len)
            .map(|i| self.read_u32(addr + (i * 4) as u32).unwrap() as i32)
            .collect()
    }

    /// Read `len` u32s starting at `addr`.
    pub fn read_u32_slice(&self, addr: u32, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| self.read_u32(addr + (i * 4) as u32).unwrap())
            .collect()
    }

    /// Read a 32-bit word.
    pub fn read_u32(&self, addr: u32) -> Result<u32, InterpError> {
        check_aligned(addr, "global")?;
        let a = addr as usize;
        if addr < GLOBAL_BASE || a + 4 > self.data.len() {
            return Err(InterpError::OutOfBounds {
                addr,
                space: "global",
            });
        }
        Ok(u32::from_le_bytes(self.data[a..a + 4].try_into().unwrap()))
    }

    /// Write a 32-bit word.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), InterpError> {
        check_aligned(addr, "global")?;
        let a = addr as usize;
        if addr < GLOBAL_BASE || a + 4 > self.data.len() {
            return Err(InterpError::OutOfBounds {
                addr,
                space: "global",
            });
        }
        self.data[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Raw bytes (used by the runtime to snapshot buffers).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

/// Kernel launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    pub global: [u32; 3],
    pub local: [u32; 3],
}

impl NdRange {
    /// 1-D range with the given global and local sizes.
    pub fn d1(global: u32, local: u32) -> Self {
        NdRange {
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// 2-D range.
    pub fn d2(gx: u32, gy: u32, lx: u32, ly: u32) -> Self {
        NdRange {
            global: [gx, gy, 1],
            local: [lx, ly, 1],
        }
    }

    /// Validate divisibility and non-zero sizes.
    pub fn validate(&self) -> Result<(), InterpError> {
        for d in 0..3 {
            if self.local[d] == 0 || self.global[d] == 0 {
                return Err(InterpError::BadNdRange(format!(
                    "zero size in dim {d}: global={:?} local={:?}",
                    self.global, self.local
                )));
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(InterpError::BadNdRange(format!(
                    "global size {} not divisible by local size {} in dim {d}",
                    self.global[d], self.local[d]
                )));
            }
        }
        Ok(())
    }

    /// Work-group counts per dimension.
    pub fn num_groups(&self) -> [u32; 3] {
        [
            self.global[0] / self.local[0],
            self.global[1] / self.local[1],
            self.global[2] / self.local[2],
        ]
    }

    /// Total work-items.
    pub fn total_items(&self) -> u64 {
        self.global.iter().map(|&g| g as u64).product()
    }

    /// Work-items per group.
    pub fn group_size(&self) -> u32 {
        self.local.iter().product()
    }
}

/// A kernel argument value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelArg {
    /// Global-memory pointer (an address from [`Memory::alloc`]).
    Ptr(u32),
    I32(i32),
    U32(u32),
    F32(f32),
}

impl KernelArg {
    fn bits(self) -> u32 {
        match self {
            KernelArg::Ptr(a) => a,
            KernelArg::I32(v) => v as u32,
            KernelArg::U32(v) => v,
            KernelArg::F32(v) => v.to_bits(),
        }
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum interpreted instructions per work-item.
    pub max_steps_per_item: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps_per_item: 50_000_000,
        }
    }
}

/// Result of a kernel execution.
#[derive(Debug, Clone, Default)]
pub struct ExecResult {
    /// Device printf output, in execution order.
    pub printf_output: Vec<String>,
    /// Total interpreted instructions across all work-items (the "dynamic
    /// instruction count" used by the analytical performance model).
    pub steps: u64,
    /// Dynamic global-memory loads (used by the HLS bandwidth model).
    pub global_loads: u64,
    /// Dynamic global-memory stores.
    pub global_stores: u64,
}

enum StepOutcome {
    Continue,
    Barrier,
    Done,
}

struct ItemState {
    block: BlockId,
    ip: usize,
    regs: Vec<u32>,
    gid: [u32; 3],
    lid: [u32; 3],
    done: bool,
    at_barrier: bool,
    steps: u64,
}

/// Execute `f` over the NDRange against `mem`.
pub fn run_ndrange(
    f: &Function,
    args: &[KernelArg],
    nd: &NdRange,
    mem: &mut Memory,
    limits: &Limits,
) -> Result<ExecResult, InterpError> {
    nd.validate()?;
    if args.len() != f.params.len() {
        return Err(InterpError::BadArgs(format!(
            "kernel `{}` takes {} args, got {}",
            f.name,
            f.params.len(),
            args.len()
        )));
    }
    let groups = nd.num_groups();
    let mut result = ExecResult::default();
    // Local array layout: assign offsets within the per-group buffer.
    let mut local_offsets = Vec::with_capacity(f.local_arrays.len());
    let mut local_total = 0u32;
    for a in &f.local_arrays {
        local_offsets.push(local_total);
        local_total += a.bytes();
    }
    for gz in 0..groups[2] {
        for gy in 0..groups[1] {
            for gx in 0..groups[0] {
                run_group(
                    f,
                    args,
                    nd,
                    [gx, gy, gz],
                    mem,
                    &local_offsets,
                    local_total,
                    limits,
                    &mut result,
                )?;
            }
        }
    }
    Ok(result)
}

#[allow(clippy::too_many_arguments)]
fn run_group(
    f: &Function,
    args: &[KernelArg],
    nd: &NdRange,
    group: [u32; 3],
    mem: &mut Memory,
    local_offsets: &[u32],
    local_total: u32,
    limits: &Limits,
    result: &mut ExecResult,
) -> Result<(), InterpError> {
    let mut local_mem = vec![0u8; local_total as usize];
    let gsize = nd.group_size() as usize;
    let mut items: Vec<ItemState> = Vec::with_capacity(gsize);
    for lz in 0..nd.local[2] {
        for ly in 0..nd.local[1] {
            for lx in 0..nd.local[0] {
                let mut regs = vec![0u32; f.num_vregs()];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = a.bits();
                }
                items.push(ItemState {
                    block: f.entry(),
                    ip: 0,
                    regs,
                    gid: [
                        group[0] * nd.local[0] + lx,
                        group[1] * nd.local[1] + ly,
                        group[2] * nd.local[2] + lz,
                    ],
                    lid: [lx, ly, lz],
                    done: false,
                    at_barrier: false,
                    steps: 0,
                });
            }
        }
    }
    loop {
        let mut all_done = true;
        for item in items.iter_mut() {
            if item.done || item.at_barrier {
                continue;
            }
            all_done = false;
            // Run the item until it blocks or finishes.
            loop {
                if item.steps > limits.max_steps_per_item {
                    return Err(InterpError::StepLimit {
                        item: item.gid,
                        limit: limits.max_steps_per_item,
                    });
                }
                match step(
                    f,
                    item,
                    nd,
                    group,
                    mem,
                    &mut local_mem,
                    local_offsets,
                    result,
                )? {
                    StepOutcome::Continue => {}
                    StepOutcome::Barrier => {
                        item.at_barrier = true;
                        break;
                    }
                    StepOutcome::Done => {
                        item.done = true;
                        break;
                    }
                }
            }
        }
        // Barrier release: every non-done item is waiting. If some items
        // already *returned* while others wait, the barrier was executed
        // under divergent control flow and can never release — report a
        // structured deadlock instead of spinning forever.
        let waiting = items.iter().filter(|i| i.at_barrier).count();
        if waiting > 0 && items.iter().all(|i| i.done || i.at_barrier) {
            let done = items.iter().filter(|i| i.done).count();
            if done > 0 {
                return Err(InterpError::BarrierDivergence {
                    group,
                    done: done as u32,
                    waiting: items
                        .iter()
                        .enumerate()
                        .filter(|(_, i)| i.at_barrier)
                        .map(|(li, _)| li as u32)
                        .collect(),
                });
            }
            for i in items.iter_mut() {
                i.at_barrier = false;
            }
            continue;
        }
        if all_done && waiting == 0 {
            break;
        }
    }
    for i in &items {
        result.steps += i.steps;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn step(
    f: &Function,
    item: &mut ItemState,
    nd: &NdRange,
    group: [u32; 3],
    mem: &mut Memory,
    local_mem: &mut [u8],
    local_offsets: &[u32],
    result: &mut ExecResult,
) -> Result<StepOutcome, InterpError> {
    item.steps += 1;
    let block = f.block(item.block);
    if item.ip >= block.insts.len() {
        // Execute terminator.
        match &block.term {
            Terminator::Ret => return Ok(StepOutcome::Done),
            Terminator::Br { target } => {
                item.block = *target;
                item.ip = 0;
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = read_operand(item, *cond);
                item.block = if c != 0 { *then_bb } else { *else_bb };
                item.ip = 0;
            }
        }
        return Ok(StepOutcome::Continue);
    }
    let inst = &block.insts[item.ip];
    item.ip += 1;
    let value: Option<u32> = match &inst.op {
        Op::Bin { op, ty, a, b } => {
            let x = read_operand(item, *a);
            let y = read_operand(item, *b);
            Some(eval_bin(*op, *ty, x, y))
        }
        Op::Un { op, ty, a } => {
            let x = read_operand(item, *a);
            Some(eval_un(*op, *ty, x))
        }
        Op::Cmp { op, ty, a, b } => {
            let x = read_operand(item, *a);
            let y = read_operand(item, *b);
            Some(eval_cmp(*op, *ty, x, y) as u32)
        }
        Op::Select { cond, a, b, .. } => {
            let c = read_operand(item, *cond);
            Some(if c != 0 {
                read_operand(item, *a)
            } else {
                read_operand(item, *b)
            })
        }
        Op::Mov { a, .. } => Some(read_operand(item, *a)),
        Op::Gep {
            base,
            index,
            elem_bytes,
            ..
        } => {
            let b = read_operand(item, *base);
            let i = read_operand(item, *index);
            Some(b.wrapping_add(i.wrapping_mul(*elem_bytes)))
        }
        Op::Load { ptr, space, .. } => {
            let addr = read_operand(item, *ptr);
            if *space == AddressSpace::Global {
                result.global_loads += 1;
            }
            Some(load_word(mem, local_mem, *space, addr)?)
        }
        Op::Store {
            ptr, value, space, ..
        } => {
            let addr = read_operand(item, *ptr);
            let v = read_operand(item, *value);
            if *space == AddressSpace::Global {
                result.global_stores += 1;
            }
            store_word(mem, local_mem, *space, addr, v)?;
            None
        }
        Op::AtomicRmw {
            op,
            ptr,
            value,
            ty,
            space,
        } => {
            let addr = read_operand(item, *ptr);
            let v = read_operand(item, *value);
            let old = load_word(mem, local_mem, *space, addr)?;
            let new = eval_atomic(*op, *ty, old, v);
            store_word(mem, local_mem, *space, addr, new)?;
            Some(old)
        }
        Op::WorkItem(b) => Some(eval_builtin(*b, item, nd, group)),
        Op::LocalAddr(id) => Some(LOCAL_BASE + local_offsets[id.index()]),
        Op::Barrier => return Ok(StepOutcome::Barrier),
        Op::Printf { fmt, args } => {
            let mut out = String::with_capacity(fmt.len() + 8);
            let mut vals = args.iter();
            let mut chars = fmt.chars().peekable();
            while let Some(c) = chars.next() {
                if c == '{' && chars.peek() == Some(&'}') {
                    chars.next();
                    match vals.next() {
                        Some((o, t)) => {
                            let bits = read_operand(item, *o);
                            match t {
                                crate::Scalar::F32 => {
                                    out.push_str(&format!("{}", f32::from_bits(bits)))
                                }
                                crate::Scalar::I32 => out.push_str(&format!("{}", bits as i32)),
                                _ => out.push_str(&format!("{bits}")),
                            }
                        }
                        None => out.push_str("{}"),
                    }
                } else {
                    out.push(c);
                }
            }
            result.printf_output.push(out);
            None
        }
    };
    if let (Some(r), Some(v)) = (inst.result, value) {
        item.regs[r.index()] = v;
    }
    Ok(StepOutcome::Continue)
}

fn read_operand(item: &ItemState, o: Operand) -> u32 {
    match o {
        Operand::Reg(VReg(n)) => item.regs[n as usize],
        Operand::Const(c) => c.bits(),
    }
}

/// Reject word accesses to non-word-aligned addresses, mirroring the
/// Vortex simulator's check so both backends fault identically on the
/// same bad pointer arithmetic.
fn check_aligned(addr: u32, space: &'static str) -> Result<(), InterpError> {
    if !addr.is_multiple_of(4) {
        return Err(InterpError::Misaligned { addr, space });
    }
    Ok(())
}

fn load_word(
    mem: &Memory,
    local: &[u8],
    space: AddressSpace,
    addr: u32,
) -> Result<u32, InterpError> {
    match space {
        AddressSpace::Global => mem.read_u32(addr),
        AddressSpace::Local => {
            check_aligned(addr, "local")?;
            let off = addr.wrapping_sub(LOCAL_BASE) as usize;
            if off + 4 > local.len() {
                return Err(InterpError::OutOfBounds {
                    addr,
                    space: "local",
                });
            }
            Ok(u32::from_le_bytes(local[off..off + 4].try_into().unwrap()))
        }
    }
}

fn store_word(
    mem: &mut Memory,
    local: &mut [u8],
    space: AddressSpace,
    addr: u32,
    v: u32,
) -> Result<(), InterpError> {
    match space {
        AddressSpace::Global => mem.write_u32(addr, v),
        AddressSpace::Local => {
            check_aligned(addr, "local")?;
            let off = addr.wrapping_sub(LOCAL_BASE) as usize;
            if off + 4 > local.len() {
                return Err(InterpError::OutOfBounds {
                    addr,
                    space: "local",
                });
            }
            local[off..off + 4].copy_from_slice(&v.to_le_bytes());
            Ok(())
        }
    }
}

fn eval_builtin(b: Builtin, item: &ItemState, nd: &NdRange, group: [u32; 3]) -> u32 {
    let groups = nd.num_groups();
    match b {
        Builtin::GlobalId(d) => item.gid[d as usize],
        Builtin::LocalId(d) => item.lid[d as usize],
        Builtin::GroupId(d) => group[d as usize],
        Builtin::GlobalSize(d) => nd.global[d as usize],
        Builtin::LocalSize(d) => nd.local[d as usize],
        Builtin::NumGroups(d) => groups[d as usize],
    }
}

/// RISC-V division semantics shared with the Vortex simulator.
pub fn riscv_div(x: i32, y: i32) -> i32 {
    if y == 0 {
        -1
    } else if x == i32::MIN && y == -1 {
        i32::MIN
    } else {
        x / y
    }
}

/// RISC-V remainder semantics shared with the Vortex simulator.
pub fn riscv_rem(x: i32, y: i32) -> i32 {
    if y == 0 {
        x
    } else if x == i32::MIN && y == -1 {
        0
    } else {
        x % y
    }
}

/// Evaluate a binary op on raw 32-bit values; shared with the HLS datapath
/// interpreter so both flows agree with this semantic by construction.
pub fn eval_bin(op: BinOp, ty: crate::Scalar, x: u32, y: u32) -> u32 {
    use crate::Scalar::*;
    match ty {
        F32 => {
            let (a, b) = (f32::from_bits(x), f32::from_bits(y));
            let r = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Rem => a % b,
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                // Bitwise on floats is rejected by the front end; treat as
                // bit ops for robustness.
                BinOp::And => return x & y,
                BinOp::Or => return x | y,
                BinOp::Xor => return x ^ y,
                BinOp::Shl | BinOp::Shr => return x,
            };
            r.to_bits()
        }
        I32 => {
            let (a, b) = (x as i32, y as i32);
            (match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => riscv_div(a, b),
                BinOp::Rem => riscv_rem(a, b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(y & 31),
                BinOp::Shr => a.wrapping_shr(y & 31),
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
            }) as u32
        }
        U32 | Bool => match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => x.checked_div(y).unwrap_or(u32::MAX),
            BinOp::Rem => x.checked_rem(y).unwrap_or(x),
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y & 31),
            BinOp::Shr => x.wrapping_shr(y & 31),
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        },
    }
}

/// Evaluate a unary op on a raw 32-bit value.
pub fn eval_un(op: UnOp, ty: crate::Scalar, x: u32) -> u32 {
    use crate::Scalar::*;
    match op {
        UnOp::Neg => match ty {
            F32 => (-f32::from_bits(x)).to_bits(),
            _ => (x as i32).wrapping_neg() as u32,
        },
        UnOp::Not => match ty {
            Bool => (x == 0) as u32,
            _ => !x,
        },
        UnOp::Abs => match ty {
            F32 => f32::from_bits(x).abs().to_bits(),
            _ => (x as i32).wrapping_abs() as u32,
        },
        UnOp::Sqrt => f32::from_bits(x).sqrt().to_bits(),
        UnOp::Exp => f32::from_bits(x).exp().to_bits(),
        UnOp::Log => f32::from_bits(x).ln().to_bits(),
        UnOp::Sin => f32::from_bits(x).sin().to_bits(),
        UnOp::Cos => f32::from_bits(x).cos().to_bits(),
        UnOp::Floor => f32::from_bits(x).floor().to_bits(),
        UnOp::F2I => {
            let v = f32::from_bits(x);
            // RISC-V fcvt.w.s saturates.
            if v.is_nan() {
                i32::MAX as u32
            } else {
                (v as i64).clamp(i32::MIN as i64, i32::MAX as i64) as i32 as u32
            }
        }
        UnOp::I2F => (x as i32 as f32).to_bits(),
        UnOp::U2F => (x as f32).to_bits(),
        UnOp::IntCast => x,
    }
}

/// Evaluate a comparison on raw 32-bit values.
pub fn eval_cmp(op: CmpOp, ty: crate::Scalar, x: u32, y: u32) -> bool {
    use crate::Scalar::*;
    match ty {
        F32 => {
            let (a, b) = (f32::from_bits(x), f32::from_bits(y));
            match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            }
        }
        I32 => {
            let (a, b) = (x as i32, y as i32);
            match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            }
        }
        U32 | Bool => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
    }
}

/// Evaluate an atomic RMW's combine step.
pub fn eval_atomic(op: AtomicOp, ty: crate::Scalar, old: u32, v: u32) -> u32 {
    match op {
        AtomicOp::Add => eval_bin(BinOp::Add, ty, old, v),
        AtomicOp::Sub => eval_bin(BinOp::Sub, ty, old, v),
        AtomicOp::Min => eval_bin(BinOp::Min, ty, old, v),
        AtomicOp::Max => eval_bin(BinOp::Max, ty, old, v),
        AtomicOp::And => old & v,
        AtomicOp::Or => old | v,
        AtomicOp::Xor => old ^ v,
        AtomicOp::Xchg => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Param;
    use crate::types::{Scalar, Type};
    use crate::{BinOp, Builtin, CmpOp};

    fn gptr(name: &str) -> Param {
        Param {
            name: name.into(),
            ty: Type::Ptr(AddressSpace::Global),
        }
    }

    /// c[i] = a[i] + b[i]
    fn vecadd_kernel() -> Function {
        let mut b = FunctionBuilder::new("vecadd", vec![gptr("a"), gptr("b"), gptr("c")]);
        let gid = b.workitem(Builtin::GlobalId(0));
        let pa = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let pb = b.gep(
            Operand::Reg(b.param(1)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let pc = b.gep(
            Operand::Reg(b.param(2)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let va = b.load(pa.into(), Scalar::F32, AddressSpace::Global);
        let vb = b.load(pb.into(), Scalar::F32, AddressSpace::Global);
        let s = b.bin(BinOp::Add, Scalar::F32, va.into(), vb.into());
        b.store(pc.into(), s.into(), Scalar::F32, AddressSpace::Global);
        b.ret();
        b.finish()
    }

    #[test]
    fn vecadd_computes_sums() {
        let f = vecadd_kernel();
        let mut mem = Memory::new(1 << 16);
        let n = 64usize;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| (i * 2) as f32).collect();
        let pa = mem.alloc_f32(&a);
        let pb = mem.alloc_f32(&b);
        let pc = mem.alloc(4 * n as u32);
        let args = [KernelArg::Ptr(pa), KernelArg::Ptr(pb), KernelArg::Ptr(pc)];
        let nd = NdRange::d1(n as u32, 16);
        run_ndrange(&f, &args, &nd, &mut mem, &Limits::default()).unwrap();
        let out = mem.read_f32_slice(pc, n);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * 3) as f32);
        }
    }

    #[test]
    fn barrier_reduction_in_local_memory() {
        // Tree reduction over one work-group of 8 using local memory.
        let mut b = FunctionBuilder::new("reduce", vec![gptr("in"), gptr("out")]);
        let tile = b.local_array("tile", Scalar::F32, 8);
        let lid = b.workitem(Builtin::LocalId(0));
        let base = b.local_addr(tile);
        let pin = b.gep(
            Operand::Reg(b.param(0)),
            lid.into(),
            4,
            AddressSpace::Global,
        );
        let v = b.load(pin.into(), Scalar::F32, AddressSpace::Global);
        let pl = b.gep(base.into(), lid.into(), 4, AddressSpace::Local);
        b.store(pl.into(), v.into(), Scalar::F32, AddressSpace::Local);
        b.barrier();
        // stride loop: s = 4, 2, 1
        let s = b.mov(Scalar::U32, Operand::imm_u32(4));
        let head = b.new_block();
        let body = b.new_block();
        let tail = b.new_block();
        let add_bb = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let c = b.cmp(CmpOp::Gt, Scalar::U32, s.into(), Operand::imm_u32(0));
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let active = b.cmp(CmpOp::Lt, Scalar::U32, lid.into(), s.into());
        b.cond_br(active.into(), add_bb, tail);
        b.switch_to(add_bb);
        let other = b.bin(BinOp::Add, Scalar::U32, lid.into(), s.into());
        let p1 = b.gep(base.into(), lid.into(), 4, AddressSpace::Local);
        let p2 = b.gep(base.into(), other.into(), 4, AddressSpace::Local);
        let v1 = b.load(p1.into(), Scalar::F32, AddressSpace::Local);
        let v2 = b.load(p2.into(), Scalar::F32, AddressSpace::Local);
        let sum = b.bin(BinOp::Add, Scalar::F32, v1.into(), v2.into());
        b.store(p1.into(), sum.into(), Scalar::F32, AddressSpace::Local);
        b.br(tail);
        b.switch_to(tail);
        b.barrier();
        let s2 = b.bin(BinOp::Shr, Scalar::U32, s.into(), Operand::imm_u32(1));
        b.assign(s, Scalar::U32, s2.into());
        b.br(head);
        b.switch_to(exit);
        // lid 0 writes the result.
        let is0 = b.cmp(CmpOp::Eq, Scalar::U32, lid.into(), Operand::imm_u32(0));
        let wr = b.new_block();
        let done = b.new_block();
        b.cond_br(is0.into(), wr, done);
        b.switch_to(wr);
        let p0 = b.gep(base.into(), Operand::imm_u32(0), 4, AddressSpace::Local);
        let r = b.load(p0.into(), Scalar::F32, AddressSpace::Local);
        let pout = b.gep(
            Operand::Reg(b.param(1)),
            Operand::imm_u32(0),
            4,
            AddressSpace::Global,
        );
        b.store(pout.into(), r.into(), Scalar::F32, AddressSpace::Global);
        b.br(done);
        b.switch_to(done);
        b.ret();
        let f = b.finish();
        crate::verify::verify_function(&f).unwrap();

        let mut mem = Memory::new(1 << 12);
        let input: Vec<f32> = (1..=8).map(|i| i as f32).collect();
        let pin = mem.alloc_f32(&input);
        let pout = mem.alloc(4);
        let nd = NdRange::d1(8, 8);
        run_ndrange(
            &f,
            &[KernelArg::Ptr(pin), KernelArg::Ptr(pout)],
            &nd,
            &mut mem,
            &Limits::default(),
        )
        .unwrap();
        assert_eq!(mem.read_f32_slice(pout, 1)[0], 36.0);
    }

    #[test]
    fn atomic_add_counts_all_items() {
        let mut b = FunctionBuilder::new("count", vec![gptr("ctr")]);
        let p = b.gep(
            Operand::Reg(b.param(0)),
            Operand::imm_u32(0),
            4,
            AddressSpace::Global,
        );
        b.atomic(
            AtomicOp::Add,
            p.into(),
            Operand::imm_i32(1),
            Scalar::I32,
            AddressSpace::Global,
        );
        b.ret();
        let f = b.finish();
        let mut mem = Memory::new(1 << 12);
        let ctr = mem.alloc_i32(&[0]);
        let nd = NdRange::d1(128, 16);
        run_ndrange(
            &f,
            &[KernelArg::Ptr(ctr)],
            &nd,
            &mut mem,
            &Limits::default(),
        )
        .unwrap();
        assert_eq!(mem.read_i32_slice(ctr, 1)[0], 128);
    }

    #[test]
    fn out_of_bounds_store_is_an_error() {
        let mut b = FunctionBuilder::new("oob", vec![gptr("p")]);
        let addr = b.gep(
            Operand::Reg(b.param(0)),
            Operand::imm_u32(1 << 20),
            4,
            AddressSpace::Global,
        );
        b.store(
            addr.into(),
            Operand::imm_i32(1),
            Scalar::I32,
            AddressSpace::Global,
        );
        b.ret();
        let f = b.finish();
        let mut mem = Memory::new(1 << 12);
        let p = mem.alloc(4);
        let e = run_ndrange(
            &f,
            &[KernelArg::Ptr(p)],
            &NdRange::d1(1, 1),
            &mut mem,
            &Limits::default(),
        )
        .unwrap_err();
        assert!(matches!(e, InterpError::OutOfBounds { .. }));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let mut b = FunctionBuilder::new("spin", vec![]);
        let l = b.new_block();
        b.br(l);
        b.switch_to(l);
        b.br(l);
        let f = b.finish();
        let mut mem = Memory::new(1 << 12);
        let e = run_ndrange(
            &f,
            &[],
            &NdRange::d1(1, 1),
            &mut mem,
            &Limits {
                max_steps_per_item: 1000,
            },
        )
        .unwrap_err();
        assert!(matches!(e, InterpError::StepLimit { .. }));
    }

    #[test]
    fn divergent_barrier_is_a_structured_deadlock() {
        // Items with lid < 2 hit a barrier; the rest return immediately.
        let mut b = FunctionBuilder::new("divbar", vec![]);
        let lid = b.workitem(Builtin::LocalId(0));
        let c = b.cmp(CmpOp::Lt, Scalar::U32, lid.into(), Operand::imm_u32(2));
        let bar_bb = b.new_block();
        let done = b.new_block();
        b.cond_br(c.into(), bar_bb, done);
        b.switch_to(bar_bb);
        b.barrier();
        b.br(done);
        b.switch_to(done);
        b.ret();
        let f = b.finish();
        let mut mem = Memory::new(1 << 12);
        let e = run_ndrange(&f, &[], &NdRange::d1(4, 4), &mut mem, &Limits::default()).unwrap_err();
        match &e {
            InterpError::BarrierDivergence {
                group,
                done,
                waiting,
            } => {
                assert_eq!(*group, [0, 0, 0]);
                assert_eq!(*done, 2);
                assert_eq!(waiting, &[0, 1]);
            }
            other => panic!("expected BarrierDivergence, got {other:?}"),
        }
        let repro: repro_diag::ReproError = e.into();
        assert_eq!(repro.kind(), "DivergenceDeadlock");
        assert_eq!(repro.class(), repro_diag::FailureClass::Deadlock);
    }

    #[test]
    fn misaligned_word_access_rejected() {
        let mut mem = Memory::new(1 << 12);
        let p = mem.alloc(16);
        assert!(matches!(
            mem.read_u32(p + 2),
            Err(InterpError::Misaligned {
                space: "global",
                ..
            })
        ));
        let e = mem.write_u32(p + 1, 7).unwrap_err();
        let repro: repro_diag::ReproError = e.into();
        assert_eq!(repro.class(), repro_diag::FailureClass::Memory);
    }

    #[test]
    fn allocation_exhaustion_is_an_error() {
        let mut mem = Memory::new(64);
        mem.try_alloc(48).unwrap();
        let e = mem.try_alloc(64).unwrap_err();
        assert!(matches!(e, InterpError::OutOfMemory { requested: 64, .. }));
        // Overflowing sizes are exhaustion too, not a panic.
        assert!(mem.try_alloc(u32::MAX).is_err());
        let repro: repro_diag::ReproError = e.into();
        assert_eq!(repro.class(), repro_diag::FailureClass::Memory);
    }

    #[test]
    fn invalid_ndrange_rejected() {
        assert!(NdRange::d1(10, 3).validate().is_err());
        assert!(NdRange::d1(0, 1).validate().is_err());
        assert!(NdRange::d1(12, 4).validate().is_ok());
    }

    #[test]
    fn printf_formats_values() {
        let mut b = FunctionBuilder::new("p", vec![]);
        let gid = b.workitem(Builtin::GlobalId(0));
        b.printf(
            "item {} says {}",
            vec![
                (Operand::Reg(gid), Scalar::U32),
                (Operand::imm_f32(2.5), Scalar::F32),
            ],
        );
        b.ret();
        let f = b.finish();
        let mut mem = Memory::new(1 << 12);
        let r = run_ndrange(&f, &[], &NdRange::d1(2, 1), &mut mem, &Limits::default()).unwrap();
        assert_eq!(r.printf_output, vec!["item 0 says 2.5", "item 1 says 2.5"]);
    }

    #[test]
    fn riscv_division_edge_cases() {
        assert_eq!(riscv_div(5, 0), -1);
        assert_eq!(riscv_rem(5, 0), 5);
        assert_eq!(riscv_div(i32::MIN, -1), i32::MIN);
        assert_eq!(riscv_rem(i32::MIN, -1), 0);
        assert_eq!(riscv_div(7, 2), 3);
    }
}
