//! Warp divergence analysis.
//!
//! The Vortex ISA manages intra-warp divergence with the SPLIT / JOIN / PRED
//! instructions (paper §II-D). The code generator only needs to emit those
//! (and pay their extra cycles — paper §IV-A challenge ❸) for branches whose
//! condition actually varies across the threads of a warp. This module
//! computes a sound over-approximation of that set.
//!
//! The analysis is a fixed point over two interacting facts:
//! * **value divergence** — a register may hold different values in
//!   different threads. Sources: per-thread builtins (`get_global_id`, …),
//!   loads through divergent addresses, atomics (each thread sees a
//!   different old value), and any computation over divergent inputs.
//! * **control divergence** — an assignment executed under a divergent
//!   branch makes the assigned register divergent (threads that skipped the
//!   assignment keep the old value). Control dependence is derived from the
//!   post-dominator tree.

use crate::cfg::{Cfg, PostDominators};
use crate::func::{BlockId, Function};
use crate::inst::{Op, Terminator};
use crate::value::Operand;

/// Result of the analysis.
#[derive(Debug, Clone)]
pub struct DivergenceInfo {
    /// Per-register: may the value vary across threads of a warp?
    pub div_reg: Vec<bool>,
    /// Per-block: does the block end in a divergent conditional branch?
    pub div_branch: Vec<bool>,
}

impl DivergenceInfo {
    /// Run the analysis on `f`.
    pub fn analyze(f: &Function) -> Self {
        let cfg = Cfg::new(f);
        let pdom = PostDominators::new(f, &cfg);
        let n_blocks = f.blocks.len();

        // cd_region[a] = blocks control-dependent on block a's branch:
        // everything reachable from a's successors without passing through
        // ipdom(a).
        let mut cd_region: Vec<Vec<bool>> = vec![Vec::new(); n_blocks];
        for (id, b) in f.iter_blocks() {
            if !matches!(b.term, Terminator::CondBr { .. }) || !cfg.is_reachable(id) {
                continue;
            }
            let stop = pdom.ipdom(id);
            let mut seen = vec![false; n_blocks];
            let mut work: Vec<BlockId> = cfg.succs[id.index()].clone();
            while let Some(cur) = work.pop() {
                if Some(cur) == stop || seen[cur.index()] {
                    continue;
                }
                seen[cur.index()] = true;
                work.extend(cfg.succs[cur.index()].iter().copied());
            }
            cd_region[id.index()] = seen;
        }

        let mut div_reg = vec![false; f.num_vregs()];
        let mut div_branch = vec![false; n_blocks];
        loop {
            let mut changed = false;
            // Blocks currently under divergent control.
            let mut under: Vec<bool> = vec![false; n_blocks];
            for a in 0..n_blocks {
                if div_branch[a] {
                    for (b, &in_region) in cd_region[a].iter().enumerate() {
                        if in_region {
                            under[b] = true;
                        }
                    }
                }
            }
            for &bb in &cfg.rpo {
                let block = f.block(bb);
                for inst in &block.insts {
                    let Some(r) = inst.result else { continue };
                    if div_reg[r.index()] {
                        continue;
                    }
                    let mut d = under[bb.index()] || source_divergence(&inst.op);
                    if !d {
                        inst.op.for_each_operand(|o| {
                            if let Operand::Reg(x) = o {
                                d |= div_reg[x.index()];
                            }
                        });
                    }
                    // Loads are divergent when the address is divergent.
                    if !d {
                        if let Op::Load {
                            ptr: Operand::Reg(x),
                            ..
                        } = &inst.op
                        {
                            d |= div_reg[x.index()];
                        }
                    }
                    if d {
                        div_reg[r.index()] = true;
                        changed = true;
                    }
                }
                if let Terminator::CondBr { cond, .. } = &block.term {
                    let d = match cond {
                        Operand::Reg(r) => div_reg[r.index()],
                        Operand::Const(_) => false,
                    };
                    if d && !div_branch[bb.index()] {
                        div_branch[bb.index()] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        DivergenceInfo {
            div_reg,
            div_branch,
        }
    }

    /// Whether the branch terminating `bb` diverges.
    pub fn is_divergent_branch(&self, bb: BlockId) -> bool {
        self.div_branch[bb.index()]
    }

    /// Number of divergent branches (used by reports and the ablation bench).
    pub fn divergent_branch_count(&self) -> usize {
        self.div_branch.iter().filter(|&&b| b).count()
    }
}

/// Ops that are divergent regardless of operands.
fn source_divergence(op: &Op) -> bool {
    match op {
        Op::WorkItem(b) => !b.is_uniform(),
        // Each thread receives a distinct old value.
        Op::AtomicRmw { .. } => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Param;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::{Operand, VReg};
    use crate::{BinOp, Builtin, CmpOp};

    fn gptr() -> Param {
        Param {
            name: "p".into(),
            ty: Type::Ptr(AddressSpace::Global),
        }
    }

    fn iparam(name: &str) -> Param {
        Param {
            name: name.into(),
            ty: Type::Scalar(Scalar::I32),
        }
    }

    #[test]
    fn gid_branch_is_divergent() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let gid = b.workitem(Builtin::GlobalId(0));
        let c = b.cmp(CmpOp::Lt, Scalar::U32, gid.into(), Operand::imm_u32(8));
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(c.into(), t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        let f = b.finish();
        let d = DivergenceInfo::analyze(&f);
        assert!(d.is_divergent_branch(BlockId(0)));
        assert_eq!(d.divergent_branch_count(), 1);
    }

    #[test]
    fn uniform_param_loop_is_uniform() {
        // for (i = 0; i < n; i++) with n a kernel scalar param: uniform.
        let mut b = FunctionBuilder::new("k", vec![iparam("n")]);
        let i = b.mov(Scalar::I32, Operand::imm_i32(0));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let c = b.cmp(CmpOp::Lt, Scalar::I32, i.into(), Operand::Reg(b.param(0)));
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let i2 = b.bin(BinOp::Add, Scalar::I32, i.into(), Operand::imm_i32(1));
        b.assign(i, Scalar::I32, i2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let d = DivergenceInfo::analyze(&f);
        assert!(
            !d.is_divergent_branch(BlockId(1)),
            "uniform loop marked divergent"
        );
        assert_eq!(d.divergent_branch_count(), 0);
    }

    #[test]
    fn divergent_trip_count_loop() {
        // for (i = 0; i < gid; i++): divergent loop branch.
        let mut b = FunctionBuilder::new("k", vec![]);
        let gid = b.workitem(Builtin::GlobalId(0));
        let i = b.mov(Scalar::U32, Operand::imm_u32(0));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let c = b.cmp(CmpOp::Lt, Scalar::U32, i.into(), gid.into());
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let i2 = b.bin(BinOp::Add, Scalar::U32, i.into(), Operand::imm_u32(1));
        b.assign(i, Scalar::U32, i2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let d = DivergenceInfo::analyze(&f);
        assert!(d.is_divergent_branch(BlockId(1)));
    }

    #[test]
    fn assignment_under_divergent_branch_taints_register() {
        // x = 0; if (gid < 8) x = 1; branch on x afterwards must be divergent.
        let mut b = FunctionBuilder::new("k", vec![]);
        let x = b.mov(Scalar::I32, Operand::imm_i32(0));
        let gid = b.workitem(Builtin::GlobalId(0));
        let c = b.cmp(CmpOp::Lt, Scalar::U32, gid.into(), Operand::imm_u32(8));
        let t = b.new_block();
        let join = b.new_block();
        let t2 = b.new_block();
        let e2 = b.new_block();
        b.cond_br(c.into(), t, join);
        b.switch_to(t);
        b.assign(x, Scalar::I32, Operand::imm_i32(1));
        b.br(join);
        b.switch_to(join);
        let c2 = b.cmp(CmpOp::Eq, Scalar::I32, x.into(), Operand::imm_i32(1));
        b.cond_br(c2.into(), t2, e2);
        b.switch_to(t2);
        b.ret();
        b.switch_to(e2);
        b.ret();
        let f = b.finish();
        let d = DivergenceInfo::analyze(&f);
        assert!(d.div_reg[x.index()], "x must be divergent");
        assert!(d.is_divergent_branch(BlockId(2)), "second branch divergent");
    }

    #[test]
    fn load_through_divergent_address_is_divergent() {
        let mut b = FunctionBuilder::new("k", vec![gptr()]);
        let gid = b.workitem(Builtin::GlobalId(0));
        let addr = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v = b.load(addr.into(), Scalar::I32, AddressSpace::Global);
        b.ret();
        let f = b.finish();
        let d = DivergenceInfo::analyze(&f);
        assert!(d.div_reg[v.index()]);
    }

    #[test]
    fn uniform_address_load_is_uniform() {
        let mut b = FunctionBuilder::new("k", vec![gptr()]);
        let addr = b.gep(
            Operand::Reg(b.param(0)),
            Operand::imm_u32(0),
            4,
            AddressSpace::Global,
        );
        let v = b.load(addr.into(), Scalar::I32, AddressSpace::Global);
        let _ = v;
        b.ret();
        let f = b.finish();
        let d = DivergenceInfo::analyze(&f);
        assert!(!d.div_reg[VReg(2).index()], "uniform load marked divergent");
    }

    #[test]
    fn atomic_result_is_divergent() {
        let mut b = FunctionBuilder::new("k", vec![gptr()]);
        let addr = b.gep(
            Operand::Reg(b.param(0)),
            Operand::imm_u32(0),
            4,
            AddressSpace::Global,
        );
        let old = b.atomic(
            crate::AtomicOp::Add,
            addr.into(),
            Operand::imm_i32(1),
            Scalar::I32,
            AddressSpace::Global,
        );
        let d = {
            b.ret();
            DivergenceInfo::analyze(&b.finish())
        };
        assert!(d.div_reg[old.index()]);
    }
}
