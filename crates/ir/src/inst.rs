//! Instructions, operations and block terminators.

use crate::types::{AddressSpace, Scalar};
use crate::value::{Operand, VReg};
use crate::LocalArrayId;
use std::fmt;

/// Binary arithmetic / logic operations. Semantics follow OpenCL C on 32-bit
/// operands; integer ops wrap, shifts mask the shift amount to 5 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic shift for `I32`, logical shift for `U32`.
    Shr,
    Min,
    Max,
}

/// Unary operations, including the math builtins the benchmark suite needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    /// Bitwise not (integers) / logical not (bool).
    Not,
    Abs,
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Floor,
    /// Float -> signed int conversion (round toward zero).
    F2I,
    /// Signed int -> float conversion.
    I2F,
    /// Unsigned int -> float conversion.
    U2F,
    /// Reinterpret between `I32`/`U32`/`Bool` (no-op on bits); also used for
    /// explicit `(int)` / `(uint)` casts between integer types.
    IntCast,
}

/// Comparison operations; result is `Bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Atomic read-modify-write operations (OpenCL 1.x `atomic_*` on 32-bit ints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    Add,
    Sub,
    Min,
    Max,
    And,
    Or,
    Xor,
    Xchg,
}

/// Work-item query builtins (OpenCL §6.12.1). `dim` is the dimension index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Builtin {
    GlobalId(u8),
    LocalId(u8),
    GroupId(u8),
    GlobalSize(u8),
    LocalSize(u8),
    NumGroups(u8),
}

impl Builtin {
    /// Whether the builtin's value varies across the threads of a warp.
    ///
    /// Group ids can also vary across hardware threads under the grid-stride
    /// work-item mapping, so only the size queries are warp-uniform.
    pub fn is_uniform(self) -> bool {
        matches!(
            self,
            Builtin::GlobalSize(_) | Builtin::LocalSize(_) | Builtin::NumGroups(_)
        )
    }
}

/// Load-store-unit hint attached to a global load, mirroring the Intel HLS
/// directives from the paper's §III-B case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LoadHint {
    /// Default: the AOC compiler instantiates a burst-coalesced LSU, which
    /// the paper measured as 32 load units per access site.
    #[default]
    BurstCoalesced,
    /// `__pipelined_load` — a single pipelined load unit; area-efficient but
    /// slower on non-consecutive access patterns (paper §III-B O2).
    Pipelined,
}

/// A non-terminator operation. If the operation produces a value it is
/// written to the [`Inst::result`] register.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `result = a <op> b` on scalars of type `ty`.
    Bin {
        op: BinOp,
        ty: Scalar,
        a: Operand,
        b: Operand,
    },
    /// `result = <op> a`; `ty` is the *operand* type (result type is derived:
    /// conversions change it, everything else preserves it).
    Un { op: UnOp, ty: Scalar, a: Operand },
    /// `result = a <cmp> b`, producing `Bool`.
    Cmp {
        op: CmpOp,
        ty: Scalar,
        a: Operand,
        b: Operand,
    },
    /// `result = cond ? a : b`.
    Select {
        ty: Scalar,
        cond: Operand,
        a: Operand,
        b: Operand,
    },
    /// Register copy / constant materialization.
    Mov { ty: Scalar, a: Operand },
    /// `result = base + index * elem_bytes` — pointer arithmetic kept
    /// structured so back ends can classify the access pattern.
    Gep {
        base: Operand,
        index: Operand,
        elem_bytes: u32,
        space: AddressSpace,
    },
    /// `result = *ptr` of scalar type `ty`.
    Load {
        ptr: Operand,
        ty: Scalar,
        space: AddressSpace,
        hint: LoadHint,
    },
    /// `*ptr = value`.
    Store {
        ptr: Operand,
        value: Operand,
        ty: Scalar,
        space: AddressSpace,
    },
    /// `result = atomic <op> (ptr, value)`; returns the *old* value.
    AtomicRmw {
        op: AtomicOp,
        ptr: Operand,
        value: Operand,
        ty: Scalar,
        space: AddressSpace,
    },
    /// `result = get_*_id(..)` work-item query.
    WorkItem(Builtin),
    /// Base address of a function-local `__local` array.
    LocalAddr(LocalArrayId),
    /// Work-group barrier (`barrier(CLK_LOCAL_MEM_FENCE | ...)`).
    Barrier,
    /// Device-side printf. Arguments are formatted with `{}` placeholders
    /// (the front end translates `%d`/`%f`/`%u`).
    Printf {
        fmt: String,
        args: Vec<(Operand, Scalar)>,
    },
}

impl Op {
    /// Whether this op writes a result register.
    pub fn has_result(&self) -> bool {
        !matches!(self, Op::Store { .. } | Op::Barrier | Op::Printf { .. })
    }

    /// Whether the op is pure (no memory or side effects) and therefore a
    /// candidate for CSE / DCE.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Op::Bin { .. }
                | Op::Un { .. }
                | Op::Cmp { .. }
                | Op::Select { .. }
                | Op::Mov { .. }
                | Op::Gep { .. }
                | Op::WorkItem(_)
                | Op::LocalAddr(_)
        )
    }

    /// Visit every operand of the op.
    pub fn for_each_operand(&self, mut f: impl FnMut(Operand)) {
        match self {
            Op::Bin { a, b, .. } | Op::Cmp { a, b, .. } => {
                f(*a);
                f(*b);
            }
            Op::Un { a, .. } | Op::Mov { a, .. } => f(*a),
            Op::Select { cond, a, b, .. } => {
                f(*cond);
                f(*a);
                f(*b);
            }
            Op::Gep { base, index, .. } => {
                f(*base);
                f(*index);
            }
            Op::Load { ptr, .. } => f(*ptr),
            Op::Store { ptr, value, .. } | Op::AtomicRmw { ptr, value, .. } => {
                f(*ptr);
                f(*value);
            }
            Op::WorkItem(_) | Op::LocalAddr(_) | Op::Barrier => {}
            Op::Printf { args, .. } => {
                for (a, _) in args {
                    f(*a);
                }
            }
        }
    }

    /// Rewrite every operand of the op in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Operand) -> Operand) {
        match self {
            Op::Bin { a, b, .. } | Op::Cmp { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Op::Un { a, .. } | Op::Mov { a, .. } => *a = f(*a),
            Op::Select { cond, a, b, .. } => {
                *cond = f(*cond);
                *a = f(*a);
                *b = f(*b);
            }
            Op::Gep { base, index, .. } => {
                *base = f(*base);
                *index = f(*index);
            }
            Op::Load { ptr, .. } => *ptr = f(*ptr),
            Op::Store { ptr, value, .. } | Op::AtomicRmw { ptr, value, .. } => {
                *ptr = f(*ptr);
                *value = f(*value);
            }
            Op::WorkItem(_) | Op::LocalAddr(_) | Op::Barrier => {}
            Op::Printf { args, .. } => {
                for (a, _) in args {
                    *a = f(*a);
                }
            }
        }
    }
}

/// An instruction: an operation plus its optional destination register.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Destination register; `None` for ops without results.
    pub result: Option<VReg>,
    pub op: Op,
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Br { target: crate::BlockId },
    /// Two-way conditional branch on a `Bool` operand.
    CondBr {
        cond: Operand,
        then_bb: crate::BlockId,
        else_bb: crate::BlockId,
    },
    /// Return from the kernel (kernels are `void`).
    Ret,
}

impl Terminator {
    /// Successor block ids of this terminator.
    pub fn successors(&self) -> impl Iterator<Item = crate::BlockId> + '_ {
        let (a, b) = match self {
            Terminator::Br { target } => (Some(*target), None),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => (Some(*then_bb), Some(*else_bb)),
            Terminator::Ret => (None, None),
        };
        a.into_iter().chain(b)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        };
        f.write_str(s)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
            UnOp::Floor => "floor",
            UnOp::F2I => "f2i",
            UnOp::I2F => "i2f",
            UnOp::U2F => "u2f",
            UnOp::IntCast => "intcast",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purity_classification() {
        let load = Op::Load {
            ptr: Operand::imm_u32(0),
            ty: Scalar::F32,
            space: AddressSpace::Global,
            hint: LoadHint::default(),
        };
        assert!(!load.is_pure());
        assert!(load.has_result());
        let add = Op::Bin {
            op: BinOp::Add,
            ty: Scalar::I32,
            a: Operand::imm_i32(1),
            b: Operand::imm_i32(2),
        };
        assert!(add.is_pure());
        assert!(!Op::Barrier.has_result());
        assert!(!Op::Barrier.is_pure());
    }

    #[test]
    fn operand_visit_and_map() {
        let mut op = Op::Select {
            ty: Scalar::I32,
            cond: Operand::Reg(VReg(1)),
            a: Operand::Reg(VReg(2)),
            b: Operand::imm_i32(5),
        };
        let mut seen = Vec::new();
        op.for_each_operand(|o| seen.push(o));
        assert_eq!(seen.len(), 3);
        op.map_operands(|o| match o {
            Operand::Reg(VReg(n)) => Operand::Reg(VReg(n + 10)),
            c => c,
        });
        let mut regs = Vec::new();
        op.for_each_operand(|o| {
            if let Some(r) = o.as_reg() {
                regs.push(r.0);
            }
        });
        assert_eq!(regs, vec![11, 12]);
    }

    #[test]
    fn terminator_successors() {
        use crate::BlockId;
        let t = Terminator::CondBr {
            cond: Operand::imm_i32(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        let succ: Vec<_> = t.successors().collect();
        assert_eq!(succ, vec![BlockId(1), BlockId(2)]);
        assert_eq!(Terminator::Ret.successors().count(), 0);
    }

    #[test]
    fn builtin_uniformity() {
        assert!(Builtin::GlobalSize(0).is_uniform());
        assert!(!Builtin::GlobalId(0).is_uniform());
        assert!(!Builtin::GroupId(1).is_uniform());
        assert!(Builtin::NumGroups(2).is_uniform());
    }
}
