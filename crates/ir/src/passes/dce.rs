//! Dead-code elimination.
//!
//! Removes pure instructions whose results are never used, driven by the
//! liveness analysis so values dead across block boundaries are caught too.

use crate::cfg::Cfg;
use crate::func::Function;
use crate::liveness::Liveness;
use crate::value::Operand;

/// Run the pass; returns the number of instructions removed.
pub fn run(f: &mut Function) -> usize {
    let cfg = Cfg::new(f);
    let lv = Liveness::compute(f, &cfg);
    run_with(f, &lv)
}

/// Like [`run`], but reusing a precomputed liveness result (the pass
/// manager caches analyses across passes).
pub fn run_with(f: &mut Function, lv: &Liveness) -> usize {
    let mut removed = 0;
    for (bi, b) in f.blocks.iter_mut().enumerate() {
        let mut live = lv.live_out[bi].clone();
        // Terminator uses.
        if let crate::inst::Terminator::CondBr {
            cond: Operand::Reg(r),
            ..
        } = &b.term
        {
            live.insert(*r);
        }
        // Backward sweep marking deletions.
        let mut keep = vec![true; b.insts.len()];
        for (ii, inst) in b.insts.iter().enumerate().rev() {
            let dead = inst.op.is_pure()
                && match inst.result {
                    Some(r) => !live.contains(r),
                    None => true,
                };
            if dead {
                keep[ii] = false;
                removed += 1;
                continue;
            }
            if let Some(r) = inst.result {
                live.remove(r);
            }
            inst.op.for_each_operand(|o| {
                if let Operand::Reg(r) = o {
                    live.insert(r);
                }
            });
        }
        let mut it = keep.iter();
        b.insts
            .retain(|_| *it.next().expect("keep mask matches length"));
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::Operand;
    use crate::{BinOp, Builtin};

    #[test]
    fn removes_dead_chain() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let x = b.mov(Scalar::I32, Operand::imm_i32(1));
        let _y = b.bin(BinOp::Add, Scalar::I32, x.into(), Operand::imm_i32(2));
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 2);
        assert_eq!(f.num_insts(), 0);
    }

    #[test]
    fn keeps_stores_and_their_inputs() {
        let mut b = FunctionBuilder::new(
            "k",
            vec![crate::Param {
                name: "p".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let gid = b.workitem(Builtin::GlobalId(0));
        let addr = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        b.store(
            addr.into(),
            Operand::imm_f32(1.0),
            Scalar::F32,
            AddressSpace::Global,
        );
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 0);
        assert_eq!(f.num_insts(), 3);
    }

    #[test]
    fn keeps_value_live_across_blocks() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let x = b.workitem(Builtin::GlobalId(0));
        let next = b.new_block();
        b.br(next);
        b.switch_to(next);
        let c = b.cmp(crate::CmpOp::Lt, Scalar::U32, x.into(), Operand::imm_u32(4));
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(c.into(), t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 0);
        assert_eq!(f.blocks[0].insts.len(), 1, "gid kept");
    }

    #[test]
    fn dead_load_is_removed_only_if_pure_policy_allows() {
        // Loads are not pure (they can fault / have perf effects on HLS LSU
        // counts), so DCE must keep them; the CSE pass replaces them with
        // movs first, which then die here.
        let mut b = FunctionBuilder::new(
            "k",
            vec![crate::Param {
                name: "p".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let addr = b.gep(
            Operand::Reg(b.param(0)),
            Operand::imm_u32(0),
            4,
            AddressSpace::Global,
        );
        let _dead = b.load(addr.into(), Scalar::F32, AddressSpace::Global);
        b.ret();
        let mut f = b.finish();
        let removed = run(&mut f);
        // The load stays; its (now-dead) gep feeds it so it stays too.
        assert_eq!(removed, 0);
        assert_eq!(f.num_insts(), 2);
    }
}
