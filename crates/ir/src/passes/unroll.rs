//! Bounded full unrolling of constant-trip innermost loops.
//!
//! A loop is unrolled only when its trip count can be proven at compile
//! time by simulating the induction variable with the constant evaluator's
//! exact wrapping semantics: constant init in the unique preheader edge,
//! constant-stride update confined to the unique latch, and a compare
//! against a constant bound in the header. That shape is exactly what the
//! front end emits for `for (i = K0; i < K1; i += K2)` counting loops.
//!
//! Registers are shared between the unrolled copies — on the mutable
//! register IR the straight-lined iterations replay the same register
//! trace the loop produced, so no renaming is needed. The header's compare
//! is replicated with each copy (its register side effects are preserved;
//! DCE deletes it once nothing reads the condition).
//!
//! Zero-trip loops fold to a jump straight to the exit, after which the
//! unreachable body is deleted.

use crate::cfg::{Cfg, Dominators};
use crate::func::{Block, BlockId, Function};
use crate::inst::{BinOp, CmpOp, Op, Terminator};
use crate::loops::{Loop, LoopForest};
use crate::passes::const_fold;
use crate::types::Scalar;
use crate::value::{Const, Operand, VReg};
use rustc_hash::FxHashMap;

/// Maximum provable trip count that is still worth straight-lining.
pub const MAX_TRIPS: u32 = 8;
/// Per-loop size budgets: bodies larger than this stay rolled.
const MAX_BODY_INSTS: usize = 40;
const MAX_BODY_BLOCKS: usize = 8;
/// Whole-function caps — unrolling stops growing a kernel past these.
const MAX_FUNC_INSTS: usize = 2048;
const MAX_FUNC_BLOCKS: usize = 96;

/// Run the pass; returns the number of loops unrolled (or folded away).
pub fn run(f: &mut Function) -> usize {
    let mut unrolled = 0;
    loop {
        let cfg = Cfg::new(f);
        let dom = Dominators::new(&cfg);
        let forest = LoopForest::find(f, &cfg, &dom);
        let Some(p) = forest.innermost().find_map(|l| plan(f, &cfg, l)) else {
            break;
        };
        apply(f, &p);
        unrolled += 1;
    }
    unrolled
}

/// Everything needed to rewrite one loop.
struct Plan {
    header: BlockId,
    /// The header's in-loop branch target.
    enter: BlockId,
    /// The header's out-of-loop branch target.
    exit: BlockId,
    latch: BlockId,
    /// Body blocks, sorted (includes header and latch).
    body: Vec<BlockId>,
    trips: u32,
}

fn plan(f: &Function, cfg: &Cfg, l: &Loop) -> Option<Plan> {
    if l.body.len() > MAX_BODY_BLOCKS || l.num_insts(f) > MAX_BODY_INSTS {
        return None;
    }
    let h = l.header;
    if h == f.entry() {
        return None;
    }
    // Unique latch, distinct from the header, and a unique outside
    // predecessor holding the induction variable's initial value.
    let [latch] = l.latches[..] else { return None };
    if latch == h || cfg.preds[h.index()].len() != 2 {
        return None;
    }
    let pre = *cfg.preds[h.index()].iter().find(|p| !l.contains(**p))?;
    // Header exits the loop on a compare of the induction variable against
    // a constant; everything else stays inside (single-exit loop).
    let Terminator::CondBr {
        cond: Operand::Reg(c),
        then_bb,
        else_bb,
    } = f.block(h).term
    else {
        return None;
    };
    let (enter, exit) = match (l.contains(then_bb), l.contains(else_bb)) {
        (true, false) => (then_bb, else_bb),
        (false, true) => (else_bb, then_bb),
        _ => return None,
    };
    if enter == h {
        return None;
    }
    for &b in &l.body {
        if b != h && f.block(b).term.successors().any(|s| !l.contains(s)) {
            return None;
        }
    }
    // The condition is the last header definition of `c`: a compare with a
    // register on one side and a matching-typed constant on the other.
    let cmp = f
        .block(h)
        .insts
        .iter()
        .rev()
        .find(|i| i.result == Some(c))?;
    let Op::Cmp { op, ty, a, b } = cmp.op else {
        return None;
    };
    if !matches!(ty, Scalar::I32 | Scalar::U32) {
        return None;
    }
    let (ivar, reg_is_lhs) = match (a, b) {
        (Operand::Reg(r), Operand::Const(_)) => (r, true),
        (Operand::Const(_), Operand::Reg(r)) => (r, false),
        _ => return None,
    };
    // The induction variable may only be written in the latch.
    for &bb in &l.body {
        if bb != latch && f.block(bb).insts.iter().any(|i| i.result == Some(ivar)) {
            return None;
        }
    }
    let init = init_value(f.block(pre), ivar, ty)?;
    let stride = latch_stride(f.block(latch), ivar, ty);
    let trips = simulate(op, ty, a, b, reg_is_lhs, init, stride)?;
    // Size after unrolling: `trips - 1` extra body copies plus the final
    // header copy.
    if trips > 0 {
        let extra = (trips as usize - 1) * l.body.len() + 1;
        let extra_insts = (trips as usize - 1) * l.num_insts(f) + f.block(h).insts.len();
        if f.blocks.len() + extra > MAX_FUNC_BLOCKS || f.num_insts() + extra_insts > MAX_FUNC_INSTS
        {
            return None;
        }
    }
    Some(Plan {
        header: h,
        enter,
        exit,
        latch,
        body: l.body.clone(),
        trips,
    })
}

/// Last definition of `ivar` in the preheader, which must be a constant of
/// the compare's type. Returns the raw 32-bit value.
fn init_value(pre: &Block, ivar: VReg, ty: Scalar) -> Option<u32> {
    let def = pre.insts.iter().rev().find(|i| i.result == Some(ivar))?;
    match def.op {
        Op::Mov {
            a: Operand::Const(c),
            ..
        } => const_bits(c, ty),
        _ => None,
    }
}

fn const_bits(c: Const, ty: Scalar) -> Option<u32> {
    match (c, ty) {
        (Const::I32(x), Scalar::I32) => Some(x as u32),
        (Const::U32(x), Scalar::U32) => Some(x),
        _ => None,
    }
}

fn typed_const(bits: u32, ty: Scalar) -> Const {
    match ty {
        Scalar::I32 => Const::I32(bits as i32),
        _ => Const::U32(bits),
    }
}

/// Walk the latch symbolically: every register is either `ivar + k` (mod
/// 2^32) or opaque. Returns the net stride applied to `ivar`, or `None`
/// when the latch rewrites it unpredictably. A latch that never writes
/// `ivar` yields stride 0 (the simulation then proves 0 trips or gives up).
fn latch_stride(latch: &Block, ivar: VReg, ty: Scalar) -> Option<u32> {
    let mut offset: FxHashMap<VReg, u32> = FxHashMap::default();
    offset.insert(ivar, 0);
    for inst in &latch.insts {
        let Some(r) = inst.result else { continue };
        let sym = |o: Operand| match o {
            Operand::Reg(rr) => offset.get(&rr).copied(),
            Operand::Const(_) => None,
        };
        let konst = |o: Operand| match o {
            Operand::Const(c) => const_bits(c, ty),
            Operand::Reg(_) => None,
        };
        let new = match inst.op {
            Op::Mov { a, .. } => sym(a),
            Op::Bin {
                op: BinOp::Add,
                ty: t,
                a,
                b,
            } if t == ty => match (sym(a), konst(b), konst(a), sym(b)) {
                (Some(o), Some(k), _, _) | (_, _, Some(k), Some(o)) => Some(o.wrapping_add(k)),
                _ => None,
            },
            Op::Bin {
                op: BinOp::Sub,
                ty: t,
                a,
                b,
            } if t == ty => match (sym(a), konst(b)) {
                (Some(o), Some(k)) => Some(o.wrapping_sub(k)),
                _ => None,
            },
            _ => None,
        };
        match new {
            Some(o) => {
                offset.insert(r, o);
            }
            None => {
                offset.remove(&r);
            }
        }
    }
    offset.get(&ivar).copied()
}

/// Replay the exit compare with the evaluator's exact semantics until it
/// goes false; `None` when it stays true past [`MAX_TRIPS`] or the compare
/// does not evaluate (e.g. mismatched constant type).
fn simulate(
    op: CmpOp,
    ty: Scalar,
    a: Operand,
    b: Operand,
    reg_is_lhs: bool,
    init: u32,
    stride: Option<u32>,
) -> Option<u32> {
    let mut cur = init;
    for trip in 0..=MAX_TRIPS {
        let iv = Operand::Const(typed_const(cur, ty));
        let (ca, cb) = if reg_is_lhs { (iv, b) } else { (a, iv) };
        let cond = const_fold::eval(&Op::Cmp {
            op,
            ty,
            a: ca,
            b: cb,
        })?;
        match cond {
            Const::Bool(true) => {}
            Const::Bool(false) => return Some(trip),
            _ => return None,
        }
        cur = cur.wrapping_add(stride?);
    }
    None
}

fn apply(f: &mut Function, p: &Plan) {
    let h = p.header;
    if p.trips == 0 {
        // The header executes once and leaves; the body is unreachable.
        f.block_mut(h).term = Terminator::Br { target: p.exit };
        remove_unreachable_blocks(f);
        return;
    }
    let body_pos: FxHashMap<BlockId, usize> =
        p.body.iter().enumerate().map(|(i, &b)| (b, i)).collect();
    let base = f.blocks.len() as u32;
    let len = p.body.len() as u32;
    // Clone id of `b` in iteration `k` (iterations are 1-based; iteration 1
    // is the original blocks).
    let clone_id = |k: u32, b: BlockId| BlockId(base + (k - 2) * len + body_pos[&b] as u32);
    let final_header = BlockId(base + (p.trips - 1) * len);
    // Header of iteration `k`, where iteration `trips + 1` is the final
    // compare-only copy that falls through to the exit.
    let header_of = |k: u32| {
        if k > p.trips {
            final_header
        } else {
            clone_id(k, h)
        }
    };
    // Iterations 2..=trips: clone every body block.
    for k in 2..=p.trips {
        for &b in &p.body {
            let mut nb = f.block(b).clone();
            nb.id = clone_id(k, b);
            if b == h {
                nb.term = Terminator::Br {
                    target: clone_id(k, p.enter),
                };
            } else {
                remap(&mut nb.term, |t| {
                    if t == h {
                        header_of(k + 1)
                    } else {
                        clone_id(k, t)
                    }
                });
            }
            f.blocks.push(nb);
        }
    }
    // Final copy: the header's instructions (the compare evaluates false
    // here) and a jump out.
    let mut fin = f.block(h).clone();
    fin.id = final_header;
    fin.term = Terminator::Br { target: p.exit };
    f.blocks.push(fin);
    // Iteration 1 = the original blocks: enter the body unconditionally and
    // send the back edge to iteration 2.
    f.block_mut(h).term = Terminator::Br { target: p.enter };
    let next = header_of(2);
    remap(&mut f.block_mut(p.latch).term, |t| {
        if t == h {
            next
        } else {
            t
        }
    });
}

fn remap(term: &mut Terminator, f: impl Fn(BlockId) -> BlockId) {
    match term {
        Terminator::Br { target } => *target = f(*target),
        Terminator::CondBr {
            then_bb, else_bb, ..
        } => {
            *then_bb = f(*then_bb);
            *else_bb = f(*else_bb);
        }
        Terminator::Ret => {}
    }
}

/// Delete blocks unreachable from the entry, renumbering the survivors so
/// `block.id` matches its position again (the verifier's layout invariant).
/// Returns the number of blocks removed.
pub fn remove_unreachable_blocks(f: &mut Function) -> usize {
    let cfg = Cfg::new(f);
    let n = f.blocks.len();
    let mut new_id: Vec<Option<BlockId>> = vec![None; n];
    let mut next = 0u32;
    for (i, slot) in new_id.iter_mut().enumerate() {
        if cfg.is_reachable(BlockId(i as u32)) {
            *slot = Some(BlockId(next));
            next += 1;
        }
    }
    if next as usize == n {
        return 0;
    }
    let removed = n - next as usize;
    let old = std::mem::take(&mut f.blocks);
    for mut b in old {
        let Some(nid) = new_id[b.id.index()] else {
            continue;
        };
        b.id = nid;
        remap(&mut b.term, |t| {
            new_id[t.index()].expect("reachable block targets reachable block")
        });
        f.blocks.push(b);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Param;
    use crate::types::{AddressSpace, Type};
    use crate::value::Operand;
    use crate::Builtin;

    /// for (i = 0; i < `bound`; i++) { out[i] = i; } with a constant or
    /// register bound.
    fn counting_loop(bound: Operand) -> Function {
        let mut b = FunctionBuilder::new(
            "k",
            vec![Param {
                name: "out".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let i = b.mov(Scalar::U32, Operand::imm_u32(0));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let c = b.cmp(CmpOp::Lt, Scalar::U32, i.into(), bound);
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let addr = b.gep(Operand::Reg(b.param(0)), i.into(), 4, AddressSpace::Global);
        b.store(addr.into(), i.into(), Scalar::U32, AddressSpace::Global);
        let i2 = b.bin(BinOp::Add, Scalar::U32, i.into(), Operand::imm_u32(1));
        b.assign(i, Scalar::U32, i2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret();
        b.finish()
    }

    fn count_stores(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.op, Op::Store { .. }))
            .count()
    }

    fn has_loops(f: &Function) -> bool {
        let cfg = Cfg::new(f);
        let dom = Dominators::new(&cfg);
        !LoopForest::find(f, &cfg, &dom).loops.is_empty()
    }

    #[test]
    fn unrolls_constant_trip_loop() {
        let mut f = counting_loop(Operand::imm_u32(3));
        assert_eq!(count_stores(&f), 1);
        assert_eq!(run(&mut f), 1);
        crate::verify::verify_function(&f).unwrap();
        assert!(!has_loops(&f), "back edges must be gone:\n{f}");
        assert_eq!(count_stores(&f), 3, "one store copy per trip:\n{f}");
    }

    #[test]
    fn zero_trip_loop_folds_to_exit() {
        let mut f = counting_loop(Operand::imm_u32(0));
        let blocks_before = f.blocks.len();
        assert_eq!(run(&mut f), 1);
        crate::verify::verify_function(&f).unwrap();
        assert!(!has_loops(&f));
        assert_eq!(count_stores(&f), 0, "body removed:\n{f}");
        assert!(f.blocks.len() < blocks_before, "unreachable body deleted");
    }

    #[test]
    fn register_bound_stays_rolled() {
        let mut fb = FunctionBuilder::new("k", vec![]);
        let bound = fb.workitem(Builtin::GlobalId(0));
        let i = fb.mov(Scalar::U32, Operand::imm_u32(0));
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.br(head);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::Lt, Scalar::U32, i.into(), bound.into());
        fb.cond_br(c.into(), body, exit);
        fb.switch_to(body);
        let i2 = fb.bin(BinOp::Add, Scalar::U32, i.into(), Operand::imm_u32(1));
        fb.assign(i, Scalar::U32, i2.into());
        fb.br(head);
        fb.switch_to(exit);
        fb.ret();
        let mut f = fb.finish();
        assert_eq!(run(&mut f), 0, "unknown trip count must stay rolled");
        assert!(has_loops(&f));
    }

    #[test]
    fn long_loop_stays_rolled() {
        let mut f = counting_loop(Operand::imm_u32(MAX_TRIPS + 1));
        assert_eq!(run(&mut f), 0);
        assert!(has_loops(&f));
    }

    #[test]
    fn nested_constant_loops_fully_flatten() {
        // for (i = 0; i < 2; i++) for (j = 0; j < 2; j++) out[0] = j;
        let mut fb = FunctionBuilder::new(
            "k",
            vec![Param {
                name: "out".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let i = fb.mov(Scalar::U32, Operand::imm_u32(0));
        let oh = fb.new_block();
        let opre = fb.new_block();
        let ih = fb.new_block();
        let ib = fb.new_block();
        let ol = fb.new_block();
        let exit = fb.new_block();
        fb.br(oh);
        fb.switch_to(oh);
        let ci = fb.cmp(CmpOp::Lt, Scalar::U32, i.into(), Operand::imm_u32(2));
        fb.cond_br(ci.into(), opre, exit);
        fb.switch_to(opre);
        let j = fb.mov(Scalar::U32, Operand::imm_u32(0));
        fb.br(ih);
        fb.switch_to(ih);
        let cj = fb.cmp(CmpOp::Lt, Scalar::U32, j.into(), Operand::imm_u32(2));
        fb.cond_br(cj.into(), ib, ol);
        fb.switch_to(ib);
        let addr = fb.gep(
            Operand::Reg(fb.param(0)),
            Operand::imm_u32(0),
            4,
            AddressSpace::Global,
        );
        fb.store(addr.into(), j.into(), Scalar::U32, AddressSpace::Global);
        let j2 = fb.bin(BinOp::Add, Scalar::U32, j.into(), Operand::imm_u32(1));
        fb.assign(j, Scalar::U32, j2.into());
        fb.br(ih);
        fb.switch_to(ol);
        let i2 = fb.bin(BinOp::Add, Scalar::U32, i.into(), Operand::imm_u32(1));
        fb.assign(i, Scalar::U32, i2.into());
        fb.br(oh);
        fb.switch_to(exit);
        fb.ret();
        let mut f = fb.finish();
        // Inner unrolls in each outer iteration context; then the outer.
        assert!(run(&mut f) >= 2);
        crate::verify::verify_function(&f).unwrap();
        assert!(!has_loops(&f), "both levels must flatten:\n{f}");
        assert_eq!(count_stores(&f), 4, "2x2 iterations:\n{f}");
    }

    #[test]
    fn removes_only_unreachable_blocks() {
        let mut b = FunctionBuilder::new("u", vec![]);
        let dead = b.new_block();
        let live = b.new_block();
        b.br(live);
        b.switch_to(dead);
        b.ret();
        b.switch_to(live);
        b.ret();
        let mut f = b.finish();
        assert_eq!(remove_unreachable_blocks(&mut f), 1);
        crate::verify::verify_function(&f).unwrap();
        assert_eq!(f.blocks.len(), 2);
    }
}
