//! Local common-subexpression elimination, including redundant-load removal.
//!
//! This is the automated counterpart of the paper's §III-B "O1: variable
//! reuse" optimization: values such as `delta[index_x] * ETA` that the
//! original backprop kernel loads and computes repeatedly are computed once
//! and reused. On the HLS flow every removed *load site* eliminates an entire
//! burst-coalesced LSU (32 load units), which is where the 12,898 → 9,882
//! BRAM reduction of Table II comes from.
//!
//! Soundness on the mutable-register IR is handled with value versioning:
//! every register carries a version that increments on reassignment, and
//! expression keys embed the versions of their operands. Loads additionally
//! carry a memory epoch per *alias class* — each pointer kernel parameter
//! is its own class (OpenCL kernel pointer arguments are treated as
//! noalias, the assumption both AOC and PoCL make), local arrays are
//! per-array classes, and anything untraceable is a wildcard class whose
//! stores invalidate everything.

use crate::func::Function;
use crate::inst::{Op, UnOp};
use crate::types::{AddressSpace, Scalar, Type};
use crate::value::{Operand, VReg};
use rustc_hash::FxHashMap;

/// Alias class of a memory access: which underlying object the pointer can
/// point into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AliasClass {
    /// The pointer kernel parameter with this index.
    Param(u32),
    /// A `__local` array.
    Local(u32),
    /// Untraceable — may alias anything.
    Any,
}

/// Trace a pointer operand back through gep/mov chains to its root object.
fn alias_class(f: &Function, insts: &[crate::inst::Inst], upto: usize, ptr: Operand) -> AliasClass {
    let mut cur = ptr;
    // Bounded walk to guard against pathological chains.
    for _ in 0..64 {
        let Operand::Reg(r) = cur else {
            return AliasClass::Any;
        };
        if (r.index()) < f.params.len() {
            return if matches!(f.vreg_type(r), Type::Ptr(_)) {
                AliasClass::Param(r.0)
            } else {
                AliasClass::Any
            };
        }
        // Find the latest assignment to r before `upto` in this block; if
        // none, the value came from another block: give up.
        let def = insts[..upto].iter().rev().find(|i| i.result == Some(r));
        let Some(def) = def else {
            return AliasClass::Any;
        };
        match &def.op {
            Op::Gep { base, .. } => cur = *base,
            Op::Mov { a, .. } => cur = *a,
            Op::LocalAddr(id) => return AliasClass::Local(id.0),
            _ => return AliasClass::Any,
        }
    }
    AliasClass::Any
}

/// Run the pass; returns the number of instructions replaced with reuses.
pub fn run(f: &mut Function) -> usize {
    let mut replaced = 0;
    for bi in 0..f.blocks.len() {
        replaced += run_block(f, bi);
    }
    replaced
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyOperand {
    Reg(VReg, u32),
    Const(u32, ConstKind),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ConstKind {
    Int,
    Float,
    Bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(crate::BinOp, Scalar, KeyOperand, KeyOperand),
    Un(UnOp, Scalar, KeyOperand),
    Cmp(crate::CmpOp, Scalar, KeyOperand, KeyOperand),
    Select(Scalar, KeyOperand, KeyOperand, KeyOperand),
    Gep(KeyOperand, KeyOperand, u32, AddressSpace),
    WorkItem(crate::Builtin),
    LocalAddr(u32),
    Load(KeyOperand, Scalar, AddressSpace, u64),
}

struct BlockState {
    version: Vec<u32>,
    /// Per-alias-class epoch; bumped by stores/atomics to that class.
    epochs: FxHashMap<AliasClass, u64>,
    /// Epoch of the wildcard class (stores to it invalidate everything, and
    /// every class observes it).
    epoch_any: u64,
    avail: FxHashMap<Key, (VReg, u32)>,
}

impl BlockState {
    fn epoch_of(&self, class: AliasClass) -> u64 {
        match class {
            // An untraceable pointer may alias anything: it must observe
            // every store, whatever class the store resolved to.
            AliasClass::Any => self.epoch_any + self.epochs.values().sum::<u64>(),
            c => self.epoch_any + self.epochs.get(&c).copied().unwrap_or(0),
        }
    }

    fn bump(&mut self, class: AliasClass) {
        match class {
            AliasClass::Any => self.epoch_any += 1,
            c => *self.epochs.entry(c).or_insert(0) += 1,
        }
    }
}

impl BlockState {
    fn key_operand(&self, o: Operand) -> KeyOperand {
        match o {
            Operand::Reg(r) => KeyOperand::Reg(r, self.version[r.index()]),
            Operand::Const(c) => KeyOperand::Const(
                c.bits(),
                match c.scalar() {
                    Scalar::F32 => ConstKind::Float,
                    Scalar::Bool => ConstKind::Bool,
                    _ => ConstKind::Int,
                },
            ),
        }
    }

    fn key(&self, op: &Op, load_epoch: u64) -> Option<Key> {
        Some(match op {
            Op::Bin { op, ty, a, b } => {
                Key::Bin(*op, *ty, self.key_operand(*a), self.key_operand(*b))
            }
            Op::Un { op, ty, a } => Key::Un(*op, *ty, self.key_operand(*a)),
            Op::Cmp { op, ty, a, b } => {
                Key::Cmp(*op, *ty, self.key_operand(*a), self.key_operand(*b))
            }
            Op::Select { ty, cond, a, b } => Key::Select(
                *ty,
                self.key_operand(*cond),
                self.key_operand(*a),
                self.key_operand(*b),
            ),
            Op::Gep {
                base,
                index,
                elem_bytes,
                space,
            } => Key::Gep(
                self.key_operand(*base),
                self.key_operand(*index),
                *elem_bytes,
                *space,
            ),
            Op::WorkItem(b) => Key::WorkItem(*b),
            Op::LocalAddr(id) => Key::LocalAddr(id.0),
            Op::Load { ptr, ty, space, .. } => {
                Key::Load(self.key_operand(*ptr), *ty, *space, load_epoch)
            }
            _ => return None,
        })
    }
}

fn run_block(f: &mut Function, bi: usize) -> usize {
    let mut replaced = 0;
    let mut st = BlockState {
        version: vec![0; f.num_vregs()],
        epochs: FxHashMap::default(),
        epoch_any: 0,
        avail: FxHashMap::default(),
    };
    let n = f.blocks[bi].insts.len();
    for ii in 0..n {
        let op = f.blocks[bi].insts[ii].op.clone();
        // Memory effects bump the written object's epoch (done before
        // keying loads so a load after a store never matches a load before
        // it). Atomics and barriers are treated as clobbering everything.
        match &op {
            Op::Store { ptr, .. } => {
                let class = alias_class(f, &f.blocks[bi].insts, ii, *ptr);
                st.bump(class);
            }
            Op::AtomicRmw { .. } | Op::Barrier => st.bump(AliasClass::Any),
            _ => {}
        }
        let load_epoch = match &op {
            Op::Load { ptr, .. } => st.epoch_of(alias_class(f, &f.blocks[bi].insts, ii, *ptr)),
            _ => 0,
        };
        let dest = f.blocks[bi].insts[ii].result;
        let key = st.key(&op, load_epoch);
        if let (Some(key), Some(dest)) = (key, dest) {
            match st.avail.get(&key) {
                Some(&(src, src_version))
                    if src != dest && st.version[src.index()] == src_version =>
                {
                    // Replace with a reuse of the previous result.
                    let ty = f.vreg_types[dest.index()];
                    let mov_ty = match ty {
                        crate::Type::Scalar(s) => s,
                        // Pointer reuse (gep/local_addr): keep a move; the
                        // scalar tag is irrelevant for pointer-width moves.
                        crate::Type::Ptr(_) => Scalar::U32,
                    };
                    f.blocks[bi].insts[ii].op = Op::Mov {
                        ty: mov_ty,
                        a: Operand::Reg(src),
                    };
                    replaced += 1;
                }
                _ => {
                    st.avail.insert(key, (dest, st.version[dest.index()] + 1));
                }
            }
        }
        if let Some(dest) = dest {
            st.version[dest.index()] += 1;
        }
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Param;
    use crate::types::Type;
    use crate::value::Operand;
    use crate::{BinOp, Builtin};

    fn gptr(name: &str) -> Param {
        Param {
            name: name.into(),
            ty: Type::Ptr(AddressSpace::Global),
        }
    }

    #[test]
    fn duplicate_load_same_address_replaced() {
        let mut b = FunctionBuilder::new("k", vec![gptr("a")]);
        let gid = b.workitem(Builtin::GlobalId(0));
        let p = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v1 = b.load(p.into(), Scalar::F32, AddressSpace::Global);
        let v2 = b.load(p.into(), Scalar::F32, AddressSpace::Global);
        let s = b.bin(BinOp::Add, Scalar::F32, v1.into(), v2.into());
        let _ = s;
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 1);
        assert!(matches!(f.blocks[0].insts[3].op, Op::Mov { .. }));
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn store_to_different_param_does_not_block_reuse() {
        // load a[i]; store b[i]; load a[i] -> second load reused (noalias
        // kernel parameters).
        let mut b = FunctionBuilder::new("k", vec![gptr("a"), gptr("b")]);
        let gid = b.workitem(Builtin::GlobalId(0));
        let pa = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let pb = b.gep(
            Operand::Reg(b.param(1)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v1 = b.load(pa.into(), Scalar::F32, AddressSpace::Global);
        b.store(pb.into(), v1.into(), Scalar::F32, AddressSpace::Global);
        let v2 = b.load(pa.into(), Scalar::F32, AddressSpace::Global);
        let s = b.bin(BinOp::Add, Scalar::F32, v1.into(), v2.into());
        let _ = s;
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 1, "cross-param store must not block reuse");
    }

    #[test]
    fn atomic_blocks_all_reuse() {
        let mut b = FunctionBuilder::new("k", vec![gptr("a"), gptr("b")]);
        let gid = b.workitem(Builtin::GlobalId(0));
        let pa = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let pb = b.gep(
            Operand::Reg(b.param(1)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v1 = b.load(pa.into(), Scalar::I32, AddressSpace::Global);
        b.atomic(
            crate::AtomicOp::Add,
            pb.into(),
            Operand::imm_i32(1),
            Scalar::I32,
            AddressSpace::Global,
        );
        let v2 = b.load(pa.into(), Scalar::I32, AddressSpace::Global);
        let s = b.bin(BinOp::Add, Scalar::I32, v1.into(), v2.into());
        let _ = s;
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 0, "atomics clobber every class");
    }

    #[test]
    fn store_between_loads_blocks_reuse() {
        let mut b = FunctionBuilder::new("k", vec![gptr("a")]);
        let gid = b.workitem(Builtin::GlobalId(0));
        let p = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v1 = b.load(p.into(), Scalar::F32, AddressSpace::Global);
        b.store(
            p.into(),
            Operand::imm_f32(0.0),
            Scalar::F32,
            AddressSpace::Global,
        );
        let v2 = b.load(p.into(), Scalar::F32, AddressSpace::Global);
        let s = b.bin(BinOp::Add, Scalar::F32, v1.into(), v2.into());
        let _ = s;
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 0, "load after store must not be reused");
    }

    #[test]
    fn barrier_blocks_local_load_reuse() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let arr = b.local_array("tile", Scalar::F32, 64);
        let base = b.local_addr(arr);
        let p = b.gep(base.into(), Operand::imm_u32(0), 4, AddressSpace::Local);
        let v1 = b.load(p.into(), Scalar::F32, AddressSpace::Local);
        b.barrier();
        let v2 = b.load(p.into(), Scalar::F32, AddressSpace::Local);
        let s = b.bin(BinOp::Add, Scalar::F32, v1.into(), v2.into());
        let _ = s;
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 0, "load across barrier must not be reused");
    }

    #[test]
    fn operand_reassignment_blocks_reuse() {
        // t = x + 1; x = 0; u = x + 1 must not reuse t.
        let mut b = FunctionBuilder::new("k", vec![]);
        let x = b.workitem(Builtin::GlobalId(0));
        let t = b.bin(BinOp::Add, Scalar::U32, x.into(), Operand::imm_u32(1));
        b.assign(x, Scalar::U32, Operand::imm_u32(0));
        let u = b.bin(BinOp::Add, Scalar::U32, x.into(), Operand::imm_u32(1));
        let _ = (t, u);
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 0);
    }

    #[test]
    fn pure_expression_reused() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let x = b.workitem(Builtin::GlobalId(0));
        let t = b.bin(BinOp::Mul, Scalar::U32, x.into(), Operand::imm_u32(3));
        let u = b.bin(BinOp::Mul, Scalar::U32, x.into(), Operand::imm_u32(3));
        let s = b.bin(BinOp::Add, Scalar::U32, t.into(), u.into());
        let _ = s;
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 1);
    }

    #[test]
    fn source_reassigned_after_availability_blocks_reuse() {
        // t = x*3; t = 0 (reassigned!); u = x*3 must not become mov t.
        let mut b = FunctionBuilder::new("k", vec![]);
        let x = b.workitem(Builtin::GlobalId(0));
        let t = b.bin(BinOp::Mul, Scalar::U32, x.into(), Operand::imm_u32(3));
        b.assign(t, Scalar::U32, Operand::imm_u32(0));
        let u = b.bin(BinOp::Mul, Scalar::U32, x.into(), Operand::imm_u32(3));
        let _ = u;
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 0);
    }
}
