//! Local copy propagation for `Mov` chains.
//!
//! Within a block, after `dst = mov src`, later uses of `dst` are rewritten
//! to `src` until either register is reassigned.

use crate::func::Function;
use crate::inst::Op;
use crate::value::{Operand, VReg};
use rustc_hash::FxHashMap;

/// Run the pass; returns the number of operands rewritten.
pub fn run(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in &mut f.blocks {
        // copy_of[dst] = src while valid.
        let mut copy_of: FxHashMap<VReg, VReg> = FxHashMap::default();
        for inst in &mut b.insts {
            inst.op.map_operands(|o| match o {
                Operand::Reg(r) => match copy_of.get(&r) {
                    Some(&src) => {
                        changed += 1;
                        Operand::Reg(src)
                    }
                    None => o,
                },
                c => c,
            });
            if let Some(dst) = inst.result {
                // Any binding *to* or *through* dst dies.
                copy_of.remove(&dst);
                copy_of.retain(|_, src| *src != dst);
                if let Op::Mov {
                    a: Operand::Reg(src),
                    ..
                } = inst.op
                {
                    if src != dst && f.vreg_types[src.index()] == f.vreg_types[dst.index()] {
                        copy_of.insert(dst, src);
                    }
                }
            }
        }
        if let crate::inst::Terminator::CondBr { cond, .. } = &mut b.term {
            if let Operand::Reg(r) = cond {
                if let Some(&src) = copy_of.get(r) {
                    *cond = Operand::Reg(src);
                    changed += 1;
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Scalar;
    use crate::value::Operand;
    use crate::BinOp;

    #[test]
    fn propagates_simple_copy() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let gid = b.workitem(crate::Builtin::GlobalId(0));
        let cp = b.mov(Scalar::U32, gid.into());
        let sum = b.bin(BinOp::Add, Scalar::U32, cp.into(), Operand::imm_u32(1));
        let _ = sum;
        b.ret();
        let mut f = b.finish();
        assert_eq!(run(&mut f), 1);
        match &f.blocks[0].insts[2].op {
            Op::Bin { a, .. } => assert_eq!(*a, Operand::Reg(gid)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn source_reassignment_kills_copy() {
        // cp = mov gid; gid = mov 0; use(cp) must NOT become use(gid).
        let mut b = FunctionBuilder::new("k", vec![]);
        let gid = b.workitem(crate::Builtin::GlobalId(0));
        let cp = b.mov(Scalar::U32, gid.into());
        b.assign(gid, Scalar::U32, Operand::imm_u32(0));
        let sum = b.bin(BinOp::Add, Scalar::U32, cp.into(), Operand::imm_u32(1));
        let _ = sum;
        b.ret();
        let mut f = b.finish();
        run(&mut f);
        match &f.blocks[0].insts[3].op {
            Op::Bin { a, .. } => assert_eq!(*a, Operand::Reg(cp), "copy wrongly propagated"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dest_reassignment_kills_copy() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let gid = b.workitem(crate::Builtin::GlobalId(0));
        let cp = b.mov(Scalar::U32, gid.into());
        b.assign(cp, Scalar::U32, Operand::imm_u32(7));
        let sum = b.bin(BinOp::Add, Scalar::U32, cp.into(), Operand::imm_u32(1));
        let _ = sum;
        b.ret();
        let mut f = b.finish();
        run(&mut f);
        match &f.blocks[0].insts[3].op {
            Op::Bin { a, .. } => assert_eq!(*a, Operand::Reg(cp)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
