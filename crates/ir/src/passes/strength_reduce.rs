//! Integer strength reduction and algebraic identities.
//!
//! Rewrites expensive integer ops into cheaper shift/mask forms — the
//! classical companion to loop optimization, where induction-variable
//! arithmetic like `i * 4` dominates the dynamic instruction stream. On
//! the Vortex backend a multiply occupies the (shared) multiplier pipe
//! while a shift issues on the ALU; on the HLS flow a constant shift is
//! free wiring instead of a DSP block.
//!
//! All rewrites are exact on the IR's wrapping 32-bit semantics:
//!
//! * `x * 2^k` → `x << k` for both `I32` and `U32` (two's-complement
//!   wrapping multiply equals wrapping shift);
//! * `x / 2^k`, `x % 2^k` → `x >> k`, `x & (2^k - 1)` for `U32` only
//!   (signed division rounds toward zero, an arithmetic shift does not);
//! * identities `x + 0`, `x - 0`, `x * 1`, `x / 1`, `x << 0`, `x >> 0`
//!   → `mov x`, and `x * 0` → `mov 0` (integers only).
//!
//! Floating point is never touched.

use crate::func::Function;
use crate::inst::{BinOp, Op};
use crate::types::Scalar;
use crate::value::{Const, Operand};

/// Run the pass; returns the number of instructions rewritten.
pub fn run(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            if let Some(new) = reduce(&inst.op) {
                inst.op = new;
                changed += 1;
            }
        }
    }
    changed
}

/// Integer value of a constant operand, if the scalar type matches `ty`.
fn int_const(o: Operand, ty: Scalar) -> Option<u32> {
    match (o, ty) {
        (Operand::Const(Const::I32(x)), Scalar::I32) => Some(x as u32),
        (Operand::Const(Const::U32(x)), Scalar::U32) => Some(x),
        _ => None,
    }
}

fn mov(ty: Scalar, a: Operand) -> Op {
    Op::Mov { ty, a }
}

fn zero(ty: Scalar) -> Operand {
    match ty {
        Scalar::I32 => Operand::Const(Const::I32(0)),
        _ => Operand::Const(Const::U32(0)),
    }
}

fn reduce(op: &Op) -> Option<Op> {
    let &Op::Bin { op: bin, ty, a, b } = op else {
        return None;
    };
    if !matches!(ty, Scalar::I32 | Scalar::U32) {
        return None;
    }
    let (ca, cb) = (int_const(a, ty), int_const(b, ty));
    // Skip fully-constant ops: const-fold owns those.
    if ca.is_some() && cb.is_some() {
        return None;
    }
    let shift_amount = |c: u32| {
        (c.is_power_of_two() && (ty == Scalar::U32 || (c as i32) > 0)).then(|| c.trailing_zeros())
    };
    let shl = |x: Operand, k: u32| Op::Bin {
        op: BinOp::Shl,
        ty,
        a: x,
        b: Operand::Const(match ty {
            Scalar::I32 => Const::I32(k as i32),
            _ => Const::U32(k),
        }),
    };
    match bin {
        BinOp::Mul => match (ca, cb) {
            (_, Some(1)) => Some(mov(ty, a)),
            (Some(1), _) => Some(mov(ty, b)),
            (_, Some(0)) | (Some(0), _) => Some(mov(ty, zero(ty))),
            (_, Some(c)) => shift_amount(c).map(|k| shl(a, k)),
            (Some(c), _) => shift_amount(c).map(|k| shl(b, k)),
            _ => None,
        },
        BinOp::Div => match cb {
            Some(1) => Some(mov(ty, a)),
            Some(c) if ty == Scalar::U32 && c.is_power_of_two() => Some(Op::Bin {
                op: BinOp::Shr,
                ty,
                a,
                b: Operand::Const(Const::U32(c.trailing_zeros())),
            }),
            _ => None,
        },
        BinOp::Rem => match cb {
            Some(c) if ty == Scalar::U32 && c.is_power_of_two() => Some(Op::Bin {
                op: BinOp::And,
                ty,
                a,
                b: Operand::Const(Const::U32(c - 1)),
            }),
            _ => None,
        },
        BinOp::Add => match (ca, cb) {
            (_, Some(0)) => Some(mov(ty, a)),
            (Some(0), _) => Some(mov(ty, b)),
            _ => None,
        },
        BinOp::Sub | BinOp::Shl | BinOp::Shr => match cb {
            Some(0) => Some(mov(ty, a)),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::value::VReg;
    use crate::Builtin;

    fn reduced(op: BinOp, ty: Scalar, a: Operand, b: Operand) -> Option<Op> {
        let mut fb = FunctionBuilder::new("k", vec![]);
        let x = fb.bin(op, ty, a, b);
        let _ = x;
        fb.ret();
        let mut f = fb.finish();
        let n = run(&mut f);
        (n > 0).then(|| f.blocks[0].insts[0].op.clone())
    }

    fn reg(n: u32) -> Operand {
        Operand::Reg(VReg(n))
    }

    #[test]
    fn mul_by_power_of_two_becomes_shift() {
        // Register operands in a builder always exist; use a workitem reg.
        let mut fb = FunctionBuilder::new("k", vec![]);
        let gid = fb.workitem(Builtin::GlobalId(0));
        let y = fb.bin(BinOp::Mul, Scalar::U32, gid.into(), Operand::imm_u32(8));
        let _ = y;
        fb.ret();
        let mut f = fb.finish();
        assert_eq!(run(&mut f), 1);
        match &f.blocks[0].insts[1].op {
            Op::Bin {
                op: BinOp::Shl,
                a,
                b: Operand::Const(Const::U32(3)),
                ..
            } => assert_eq!(*a, Operand::Reg(gid)),
            other => panic!("unexpected {other:?}"),
        }
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn signed_mul_uses_signed_shift_amount() {
        match reduced(BinOp::Mul, Scalar::I32, Operand::imm_i32(4), reg(0)) {
            Some(Op::Bin {
                op: BinOp::Shl,
                b: Operand::Const(Const::I32(2)),
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn signed_div_not_reduced_to_shift() {
        // -7 / 2 == -3 but -7 >> 1 == -4: must not rewrite.
        assert!(reduced(BinOp::Div, Scalar::I32, reg(0), Operand::imm_i32(2)).is_none());
    }

    #[test]
    fn unsigned_div_and_rem_reduced() {
        match reduced(BinOp::Div, Scalar::U32, reg(0), Operand::imm_u32(16)) {
            Some(Op::Bin {
                op: BinOp::Shr,
                b: Operand::Const(Const::U32(4)),
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        match reduced(BinOp::Rem, Scalar::U32, reg(0), Operand::imm_u32(16)) {
            Some(Op::Bin {
                op: BinOp::And,
                b: Operand::Const(Const::U32(15)),
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn identities_become_movs() {
        assert!(matches!(
            reduced(BinOp::Add, Scalar::I32, reg(0), Operand::imm_i32(0)),
            Some(Op::Mov { .. })
        ));
        assert!(matches!(
            reduced(BinOp::Mul, Scalar::U32, Operand::imm_u32(1), reg(0)),
            Some(Op::Mov { .. })
        ));
        assert!(matches!(
            reduced(BinOp::Mul, Scalar::I32, reg(0), Operand::imm_i32(0)),
            Some(Op::Mov {
                a: Operand::Const(Const::I32(0)),
                ..
            })
        ));
    }

    #[test]
    fn float_and_mismatched_const_untouched() {
        assert!(reduced(BinOp::Mul, Scalar::F32, reg(0), Operand::imm_f32(2.0)).is_none());
        // A U32-typed op with an I32 constant operand is left alone.
        assert!(reduced(BinOp::Mul, Scalar::U32, reg(0), Operand::imm_i32(8)).is_none());
        // Fully-constant ops belong to const-fold.
        assert!(reduced(
            BinOp::Mul,
            Scalar::I32,
            Operand::imm_i32(3),
            Operand::imm_i32(4)
        )
        .is_none());
    }
}
