//! Local constant folding and constant propagation.
//!
//! Per-block only: a register's constant binding is invalidated when the
//! register is reassigned and at block boundaries, which keeps the pass sound
//! on the mutable-register IR without needing reaching definitions.

use crate::func::Function;
use crate::inst::{BinOp, CmpOp, Op, UnOp};
use crate::value::{Const, Operand, VReg};
use rustc_hash::FxHashMap;

/// Run the pass; returns the number of instructions folded or operands
/// propagated.
pub fn run(f: &mut Function) -> usize {
    let mut changed = 0;
    for b in &mut f.blocks {
        let mut known: FxHashMap<VReg, Const> = FxHashMap::default();
        for inst in &mut b.insts {
            // Propagate known constants into operands.
            inst.op.map_operands(|o| match o {
                Operand::Reg(r) => match known.get(&r) {
                    Some(&c) => {
                        changed += 1;
                        Operand::Const(c)
                    }
                    None => o,
                },
                c => c,
            });
            // Invalidate any binding for the destination.
            if let Some(r) = inst.result {
                known.remove(&r);
            }
            // Try to evaluate.
            if let Some(c) = eval(&inst.op) {
                if !matches!(
                    inst.op,
                    Op::Mov {
                        a: Operand::Const(_),
                        ..
                    }
                ) {
                    inst.op = Op::Mov {
                        ty: c.scalar(),
                        a: Operand::Const(c),
                    };
                    changed += 1;
                }
                if let Some(r) = inst.result {
                    known.insert(r, c);
                }
            }
        }
        // Propagate into the terminator condition.
        if let crate::inst::Terminator::CondBr { cond, .. } = &mut b.term {
            if let Operand::Reg(r) = cond {
                if let Some(&c) = known.get(r) {
                    *cond = Operand::Const(c);
                    changed += 1;
                }
            }
        }
    }
    changed
}

/// Evaluate an op whose operands are all constants.
pub fn eval(op: &Op) -> Option<Const> {
    match op {
        Op::Mov {
            a: Operand::Const(c),
            ..
        } => Some(*c),
        Op::Bin {
            op,
            ty: _,
            a: Operand::Const(a),
            b: Operand::Const(b),
        } => eval_bin(*op, *a, *b),
        Op::Un {
            op,
            ty: _,
            a: Operand::Const(a),
        } => eval_un(*op, *a),
        Op::Cmp {
            op,
            ty: _,
            a: Operand::Const(a),
            b: Operand::Const(b),
        } => eval_cmp(*op, *a, *b),
        Op::Select {
            cond: Operand::Const(c),
            a: Operand::Const(a),
            b: Operand::Const(b),
            ..
        } => Some(if !c.is_zero() { *a } else { *b }),
        _ => None,
    }
}

fn eval_bin(op: BinOp, a: Const, b: Const) -> Option<Const> {
    Some(match (a, b) {
        (Const::I32(x), Const::I32(y)) => Const::I32(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return None;
                }
                x.wrapping_div(y)
            }
            BinOp::Rem => {
                if y == 0 {
                    return None;
                }
                x.wrapping_rem(y)
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        }),
        (Const::U32(x), Const::U32(y)) => Const::U32(match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return None;
                }
                x / y
            }
            BinOp::Rem => {
                if y == 0 {
                    return None;
                }
                x % y
            }
            BinOp::And => x & y,
            BinOp::Or => x | y,
            BinOp::Xor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y),
            BinOp::Shr => x.wrapping_shr(y),
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
        }),
        (Const::F32(x), Const::F32(y)) => Const::F32(match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Rem => x % y,
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            // Bitwise ops on floats never reach here (verifier/front end).
            _ => return None,
        }),
        _ => return None,
    })
}

fn eval_un(op: UnOp, a: Const) -> Option<Const> {
    Some(match (op, a) {
        (UnOp::Neg, Const::I32(x)) => Const::I32(x.wrapping_neg()),
        (UnOp::Neg, Const::F32(x)) => Const::F32(-x),
        (UnOp::Not, Const::I32(x)) => Const::I32(!x),
        (UnOp::Not, Const::U32(x)) => Const::U32(!x),
        (UnOp::Not, Const::Bool(x)) => Const::Bool(!x),
        (UnOp::Abs, Const::I32(x)) => Const::I32(x.wrapping_abs()),
        (UnOp::Abs, Const::F32(x)) => Const::F32(x.abs()),
        (UnOp::Sqrt, Const::F32(x)) => Const::F32(x.sqrt()),
        (UnOp::Exp, Const::F32(x)) => Const::F32(x.exp()),
        (UnOp::Log, Const::F32(x)) => Const::F32(x.ln()),
        (UnOp::Sin, Const::F32(x)) => Const::F32(x.sin()),
        (UnOp::Cos, Const::F32(x)) => Const::F32(x.cos()),
        (UnOp::Floor, Const::F32(x)) => Const::F32(x.floor()),
        (UnOp::F2I, Const::F32(x)) => Const::I32(x as i32),
        (UnOp::I2F, Const::I32(x)) => Const::F32(x as f32),
        (UnOp::U2F, Const::U32(x)) => Const::F32(x as f32),
        (UnOp::IntCast, c) => c,
        _ => return None,
    })
}

fn eval_cmp(op: CmpOp, a: Const, b: Const) -> Option<Const> {
    let r = match (a, b) {
        (Const::I32(x), Const::I32(y)) => cmp_ord(op, x.cmp(&y)),
        (Const::U32(x), Const::U32(y)) => cmp_ord(op, x.cmp(&y)),
        (Const::Bool(x), Const::Bool(y)) => cmp_ord(op, x.cmp(&y)),
        (Const::F32(x), Const::F32(y)) => match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        },
        _ => return None,
    };
    Some(Const::Bool(r))
}

fn cmp_ord(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::Ne => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::Le => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::Ge => ord != Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Scalar;
    use crate::value::Operand;

    #[test]
    fn folds_chained_constants() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let x = b.bin(
            BinOp::Add,
            Scalar::I32,
            Operand::imm_i32(2),
            Operand::imm_i32(3),
        );
        let y = b.bin(BinOp::Mul, Scalar::I32, x.into(), Operand::imm_i32(4));
        b.ret();
        let mut f = b.finish();
        run(&mut f);
        // y must now be a constant 20.
        let inst = &f.blocks[0].insts[1];
        assert_eq!(inst.result, Some(y));
        assert!(
            matches!(
                inst.op,
                Op::Mov {
                    a: Operand::Const(Const::I32(20)),
                    ..
                }
            ),
            "got {:?}",
            inst.op
        );
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut b = FunctionBuilder::new("k", vec![]);
        b.bin(
            BinOp::Div,
            Scalar::I32,
            Operand::imm_i32(1),
            Operand::imm_i32(0),
        );
        b.ret();
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[0].op, Op::Bin { .. }));
    }

    #[test]
    fn reassignment_invalidates_binding() {
        // x = 1; x = gid (not const); y = x + 0 must NOT fold x to 1.
        let mut b = FunctionBuilder::new("k", vec![]);
        let x = b.mov(Scalar::U32, Operand::imm_u32(1));
        let gid = b.workitem(crate::Builtin::GlobalId(0));
        b.assign(x, Scalar::U32, gid.into());
        let y = b.bin(BinOp::Add, Scalar::U32, x.into(), Operand::imm_u32(0));
        let _ = y;
        b.ret();
        let mut f = b.finish();
        run(&mut f);
        let inst = &f.blocks[0].insts[3];
        match &inst.op {
            Op::Bin { a, .. } => assert_eq!(*a, Operand::Reg(x)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn folds_float_math() {
        assert_eq!(eval_un(UnOp::Sqrt, Const::F32(9.0)), Some(Const::F32(3.0)));
        assert_eq!(
            eval_bin(BinOp::Max, Const::F32(1.0), Const::F32(2.0)),
            Some(Const::F32(2.0))
        );
    }

    #[test]
    fn folds_comparisons() {
        assert_eq!(
            eval_cmp(CmpOp::Le, Const::U32(3), Const::U32(3)),
            Some(Const::Bool(true))
        );
        assert_eq!(
            eval_cmp(CmpOp::Gt, Const::I32(-1), Const::I32(0)),
            Some(Const::Bool(false))
        );
    }

    #[test]
    fn propagates_into_branch_condition() {
        let mut b = FunctionBuilder::new("k", vec![]);
        let c = b.cmp(
            CmpOp::Lt,
            Scalar::I32,
            Operand::imm_i32(1),
            Operand::imm_i32(2),
        );
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(c.into(), t, e);
        b.switch_to(t);
        b.ret();
        b.switch_to(e);
        b.ret();
        let mut f = b.finish();
        run(&mut f);
        match &f.blocks[0].term {
            crate::Terminator::CondBr { cond, .. } => {
                assert_eq!(*cond, Operand::Const(Const::Bool(true)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
