//! Loop-invariant code motion.
//!
//! Hoists pure instructions out of natural loops into a preheader. On the
//! mutable-register IR the soundness conditions are phrased with liveness
//! instead of SSA dominance:
//!
//! * the destination has exactly one definition inside the loop, and is not
//!   live into the header — so no path (zero-trip exit, use-before-def
//!   around the back edge, conditional definition) observes the old value;
//! * every register operand is either never defined inside the loop, or is
//!   the destination of an instruction hoisted in an earlier round.
//!
//! All pure ops of this IR are total (integer division follows the RISC-V
//! convention in the evaluator and never traps), so executing a hoisted
//! instruction on the zero-trip path is safe speculation.

use crate::cfg::{Cfg, Dominators};
use crate::func::{BlockId, Function};
use crate::inst::{Inst, Terminator};
use crate::liveness::Liveness;
use crate::loops::{Loop, LoopForest};
use crate::value::Operand;

/// Run the pass; returns the number of instructions hoisted.
pub fn run(f: &mut Function) -> usize {
    let mut total = 0;
    // Hoisting rewrites the CFG (preheader insertion), so analyses are
    // recomputed after every loop processed; iterate until no loop yields
    // further candidates. Inner loops come first in the forest order, which
    // lets a value migrate outward one level per iteration.
    loop {
        let cfg = Cfg::new(f);
        let dom = Dominators::new(&cfg);
        let forest = LoopForest::find(f, &cfg, &dom);
        let lv = Liveness::compute(f, &cfg);
        let mut hoisted = 0;
        for l in &forest.loops {
            hoisted = hoist_loop(f, &cfg, &dom, &lv, l);
            if hoisted > 0 {
                break;
            }
        }
        if hoisted == 0 {
            return total;
        }
        total += hoisted;
    }
}

fn hoist_loop(f: &mut Function, cfg: &Cfg, dom: &Dominators, lv: &Liveness, l: &Loop) -> usize {
    if l.header == f.entry() {
        // No outside edge to place a preheader on.
        return 0;
    }
    // Only hoist from blocks executed on every iteration (they dominate
    // every latch). Hoisting from a conditional block is still sound — the
    // ops are pure and total — but turns "executed when the branch is
    // taken" into "executed always", which can *increase* the dynamic
    // count (e.g. a once-per-group tail guarded by `lid == 0`).
    let every_iter: Vec<bool> = l
        .body
        .iter()
        .map(|&b| l.latches.iter().all(|&lt| dom.dominates(b, lt)))
        .collect();
    // How often each register is defined inside the loop.
    let mut defs = vec![0u32; f.num_vregs()];
    for &b in &l.body {
        for inst in &f.block(b).insts {
            if let Some(r) = inst.result {
                defs[r.index()] += 1;
            }
        }
    }
    // Select candidates to a fixed point: an instruction whose operands are
    // defined by an earlier-round selection becomes movable itself. Rounds
    // are recorded so the preheader lists definitions before their uses.
    let live_hdr = &lv.live_in[l.header.index()];
    let mut selected: Vec<(BlockId, usize)> = Vec::new();
    let mut selected_set = vec![false; f.num_vregs()];
    let mut is_selected: Vec<Vec<bool>> = l
        .body
        .iter()
        .map(|&b| vec![false; f.block(b).insts.len()])
        .collect();
    loop {
        let mut grew = false;
        for (bi, &b) in l.body.iter().enumerate() {
            if !every_iter[bi] {
                continue;
            }
            for (ii, inst) in f.block(b).insts.iter().enumerate() {
                if is_selected[bi][ii] {
                    continue;
                }
                let Some(r) = inst.result else { continue };
                if !inst.op.is_pure() || defs[r.index()] != 1 || live_hdr.contains(r) {
                    continue;
                }
                let mut ok = true;
                inst.op.for_each_operand(|o| {
                    if let Operand::Reg(or) = o {
                        if defs[or.index()] > 0 && !selected_set[or.index()] {
                            ok = false;
                        }
                    }
                });
                if ok {
                    is_selected[bi][ii] = true;
                    selected_set[r.index()] = true;
                    selected.push((b, ii));
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    if selected.is_empty() {
        return 0;
    }
    // Extract the hoisted instructions in selection order (defs before uses),
    // then drop them from their blocks.
    let hoisted: Vec<Inst> = selected
        .iter()
        .map(|&(b, ii)| f.block(b).insts[ii].clone())
        .collect();
    for (bi, &b) in l.body.iter().enumerate() {
        let mask = &is_selected[bi];
        let mut it = mask.iter();
        f.block_mut(b)
            .insts
            .retain(|_| !*it.next().expect("mask matches length"));
    }
    let n = hoisted.len();
    place_in_preheader(f, cfg, l, hoisted);
    n
}

/// Append `insts` to the loop's preheader, creating one if the header has
/// several outside predecessors or a conditional incoming edge.
fn place_in_preheader(f: &mut Function, cfg: &Cfg, l: &Loop, insts: Vec<Inst>) {
    let outside: Vec<BlockId> = cfg.preds[l.header.index()]
        .iter()
        .copied()
        .filter(|p| !l.contains(*p))
        .collect();
    if let [p] = outside[..] {
        if matches!(f.block(p).term, Terminator::Br { .. }) {
            f.block_mut(p).insts.extend(insts);
            return;
        }
    }
    let nb = BlockId(f.blocks.len() as u32);
    for &p in &outside {
        let term = &mut f.block_mut(p).term;
        match term {
            Terminator::Br { target } if *target == l.header => *target = nb,
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                if *then_bb == l.header {
                    *then_bb = nb;
                }
                if *else_bb == l.header {
                    *else_bb = nb;
                }
            }
            _ => {}
        }
    }
    f.blocks.push(crate::func::Block {
        id: nb,
        insts,
        term: Terminator::Br { target: l.header },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Param;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::Operand;
    use crate::{BinOp, Builtin, CmpOp};

    /// for (i = 0; i < n; i++) out[i] = x * 3  — with `x * 3` recomputed in
    /// the body, hoistable to the preheader.
    fn loop_with_invariant() -> (Function, crate::value::VReg) {
        let mut b = FunctionBuilder::new(
            "k",
            vec![Param {
                name: "out".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let x = b.workitem(Builtin::GlobalId(0));
        let i = b.mov(Scalar::U32, Operand::imm_u32(0));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let c = b.cmp(CmpOp::Lt, Scalar::U32, i.into(), Operand::imm_u32(8));
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let inv = b.bin(BinOp::Mul, Scalar::U32, x.into(), Operand::imm_u32(3));
        let addr = b.gep(Operand::Reg(b.param(0)), i.into(), 4, AddressSpace::Global);
        b.store(addr.into(), inv.into(), Scalar::U32, AddressSpace::Global);
        let i2 = b.bin(BinOp::Add, Scalar::U32, i.into(), Operand::imm_u32(1));
        b.assign(i, Scalar::U32, i2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret();
        (b.finish(), inv)
    }

    #[test]
    fn hoists_invariant_multiply() {
        let (mut f, inv) = loop_with_invariant();
        let hoisted = run(&mut f);
        assert!(hoisted >= 1, "invariant multiply must move");
        crate::verify::verify_function(&f).unwrap();
        // The multiply now sits outside the loop: in a block that is not in
        // any loop body.
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        let forest = LoopForest::find(&f, &cfg, &dom);
        let def_block = f
            .iter_blocks()
            .find(|(_, b)| b.insts.iter().any(|i| i.result == Some(inv)))
            .map(|(id, _)| id)
            .expect("multiply still defined somewhere");
        assert!(
            forest.loops.iter().all(|l| !l.contains(def_block)),
            "hoisted def must be outside every loop, is in {def_block}"
        );
    }

    #[test]
    fn loop_varying_value_stays() {
        // i2 = i + 1 depends on i which is redefined in the loop: not hoisted.
        let (mut f, _) = loop_with_invariant();
        run(&mut f);
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        let forest = LoopForest::find(&f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        let body_has_add = l.body.iter().any(|&b| {
            f.block(b)
                .insts
                .iter()
                .any(|i| matches!(i.op, crate::Op::Bin { op: BinOp::Add, .. }))
        });
        assert!(body_has_add, "induction update must remain in the loop");
    }

    #[test]
    fn load_is_not_hoisted() {
        // Loads are not pure; a load of an invariant address must stay put
        // (a store in the loop could change the value).
        let mut b = FunctionBuilder::new(
            "k",
            vec![Param {
                name: "p".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let i = b.mov(Scalar::U32, Operand::imm_u32(0));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let c = b.cmp(CmpOp::Lt, Scalar::U32, i.into(), Operand::imm_u32(4));
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let addr = b.gep(
            Operand::Reg(b.param(0)),
            Operand::imm_u32(0),
            4,
            AddressSpace::Global,
        );
        let v = b.load(addr.into(), Scalar::U32, AddressSpace::Global);
        let addr2 = b.gep(Operand::Reg(b.param(0)), i.into(), 4, AddressSpace::Global);
        b.store(addr2.into(), v.into(), Scalar::U32, AddressSpace::Global);
        let i2 = b.bin(BinOp::Add, Scalar::U32, i.into(), Operand::imm_u32(1));
        b.assign(i, Scalar::U32, i2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret();
        let mut f = b.finish();
        run(&mut f);
        crate::verify::verify_function(&f).unwrap();
        let loads_in_body = f
            .block(BlockId(2))
            .insts
            .iter()
            .any(|i| matches!(i.op, crate::Op::Load { .. }));
        assert!(loads_in_body, "load must not be hoisted");
    }
}
