//! The IR middle end: named passes behind a [`PassManager`].
//!
//! The pass set deliberately mirrors the transformations the paper leans on:
//! * [`cse`] is the automated form of the §III-B "O1: variable reuse"
//!   optimization — it removes redundant global loads and recomputed
//!   subexpressions exactly the way the authors did by hand in Listing 2.
//! * [`const_fold`] and [`copy_prop`] clean up front-end output.
//! * [`dce`] removes the dead code those passes leave behind.
//! * [`licm`], [`strength_reduce`] and [`unroll`] form the loop tier behind
//!   [`OptLevel::Loop`], built on the natural-loop analysis in
//!   [`crate::loops`].
//!
//! The manager drives the selected pipeline to a fixed point (bounded by
//! [`MAX_ROUNDS`]), re-verifies the IR after every pass in debug builds,
//! records per-pass rewrite counts and wall-clock time in a
//! [`FunctionReport`], and — with the `OCL_IR_SNAPSHOT` environment
//! variable set — dumps the IR between passes for debugging.

pub mod const_fold;
pub mod copy_prop;
pub mod cse;
pub mod dce;
pub mod licm;
pub mod strength_reduce;
pub mod unroll;

use crate::cfg::{Cfg, Dominators};
use crate::func::{Function, Module};
use crate::liveness::Liveness;
use crate::loops::LoopForest;

/// Optimization level, matching the flags both flows accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Front-end output as-is.
    None,
    /// Constant folding + copy propagation + DCE.
    #[default]
    Basic,
    /// `Basic` plus CSE / variable-reuse (the automated "O1" of §III-B).
    VariableReuse,
    /// `VariableReuse` plus the loop tier: invariant code motion, integer
    /// strength reduction and bounded unrolling of constant-trip loops.
    Loop,
}

impl OptLevel {
    /// All levels, weakest first.
    pub const ALL: [OptLevel; 4] = [
        OptLevel::None,
        OptLevel::Basic,
        OptLevel::VariableReuse,
        OptLevel::Loop,
    ];

    /// Parse the CLI spelling used by the `--opt` flag.
    pub fn parse(s: &str) -> Option<OptLevel> {
        Some(match s.to_ascii_lowercase().as_str() {
            "none" | "o0" => OptLevel::None,
            "basic" => OptLevel::Basic,
            "reuse" | "variable-reuse" | "o1" => OptLevel::VariableReuse,
            "loop" => OptLevel::Loop,
            _ => return None,
        })
    }

    /// The canonical CLI spelling accepted by [`OptLevel::parse`].
    pub fn flag_name(self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Basic => "basic",
            OptLevel::VariableReuse => "reuse",
            OptLevel::Loop => "loop",
        }
    }
}

/// Lazily-computed, cached analyses shared by the passes of one pipeline
/// run. The manager invalidates entries according to each pass's
/// [`Pass::preserves_cfg`] contract, so a pass that only rewrites operands
/// does not force a CFG rebuild for the next one.
#[derive(Default)]
pub struct Analyses {
    cfg: Option<Cfg>,
    dom: Option<Dominators>,
    live: Option<Liveness>,
    loops: Option<LoopForest>,
}

impl Analyses {
    fn ensure_cfg(&mut self, f: &Function) {
        if self.cfg.is_none() {
            self.cfg = Some(Cfg::new(f));
        }
    }

    /// The function's CFG.
    pub fn cfg(&mut self, f: &Function) -> &Cfg {
        self.ensure_cfg(f);
        self.cfg.as_ref().unwrap()
    }

    /// CFG plus dominator tree.
    pub fn cfg_dom(&mut self, f: &Function) -> (&Cfg, &Dominators) {
        self.ensure_cfg(f);
        if self.dom.is_none() {
            self.dom = Some(Dominators::new(self.cfg.as_ref().unwrap()));
        }
        (self.cfg.as_ref().unwrap(), self.dom.as_ref().unwrap())
    }

    /// CFG plus register liveness.
    pub fn cfg_live(&mut self, f: &Function) -> (&Cfg, &Liveness) {
        self.ensure_cfg(f);
        if self.live.is_none() {
            self.live = Some(Liveness::compute(f, self.cfg.as_ref().unwrap()));
        }
        (self.cfg.as_ref().unwrap(), self.live.as_ref().unwrap())
    }

    /// Natural loops (computes CFG and dominators on the way).
    pub fn loops(&mut self, f: &Function) -> &LoopForest {
        if self.loops.is_none() {
            let (cfg, dom) = {
                self.cfg_dom(f);
                (self.cfg.as_ref().unwrap(), self.dom.as_ref().unwrap())
            };
            self.loops = Some(LoopForest::find(f, cfg, dom));
        }
        self.loops.as_ref().unwrap()
    }

    /// Drop everything — the CFG changed.
    pub fn invalidate_all(&mut self) {
        *self = Analyses::default();
    }

    /// Drop the dataflow results but keep the CFG-shaped ones — for passes
    /// that rewrite instructions without touching block structure.
    pub fn invalidate_dataflow(&mut self) {
        self.live = None;
    }
}

/// A named transformation over one function.
pub trait Pass {
    /// Stable name used in reports and goldens.
    fn name(&self) -> &'static str;
    /// Apply the pass; returns the number of rewrites performed (0 means
    /// the function is unchanged).
    fn run(&self, f: &mut Function, an: &mut Analyses) -> usize;
    /// Whether the pass leaves block structure and edges untouched. The
    /// manager keeps CFG-derived analyses cached across passes that do.
    fn preserves_cfg(&self) -> bool {
        true
    }
}

/// Constant folding and per-block constant propagation.
pub struct ConstFold;
impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "const-fold"
    }
    fn run(&self, f: &mut Function, _an: &mut Analyses) -> usize {
        const_fold::run(f)
    }
}

/// Per-block copy propagation.
pub struct CopyProp;
impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "copy-prop"
    }
    fn run(&self, f: &mut Function, _an: &mut Analyses) -> usize {
        copy_prop::run(f)
    }
}

/// Common-subexpression and redundant-load elimination (automated O1).
pub struct Cse;
impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }
    fn run(&self, f: &mut Function, _an: &mut Analyses) -> usize {
        cse::run(f)
    }
}

/// Liveness-driven dead-code elimination.
pub struct Dce;
impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }
    fn run(&self, f: &mut Function, an: &mut Analyses) -> usize {
        let (_, lv) = an.cfg_live(f);
        dce::run_with(f, lv)
    }
}

/// Loop-invariant code motion (inserts preheaders).
pub struct Licm;
impl Pass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }
    fn run(&self, f: &mut Function, _an: &mut Analyses) -> usize {
        licm::run(f)
    }
    fn preserves_cfg(&self) -> bool {
        false
    }
}

/// Integer strength reduction and algebraic identities.
pub struct StrengthReduce;
impl Pass for StrengthReduce {
    fn name(&self) -> &'static str {
        "strength-reduce"
    }
    fn run(&self, f: &mut Function, _an: &mut Analyses) -> usize {
        strength_reduce::run(f)
    }
}

/// Bounded full unrolling of constant-trip loops.
pub struct Unroll;
impl Pass for Unroll {
    fn name(&self) -> &'static str {
        "unroll"
    }
    fn run(&self, f: &mut Function, _an: &mut Analyses) -> usize {
        unroll::run(f)
    }
    fn preserves_cfg(&self) -> bool {
        false
    }
}

/// Upper bound on fixed-point rounds. Every pipeline in this crate
/// converges far below it; hitting the cap means a pass keeps reporting
/// rewrites without making progress, which debug builds treat as a bug.
pub const MAX_ROUNDS: usize = 12;

/// Accumulated statistics for one pipeline slot.
#[derive(Debug, Clone)]
pub struct PassRunStats {
    /// [`Pass::name`] of the pass in this slot.
    pub name: &'static str,
    /// How many times the slot ran (once per round).
    pub runs: usize,
    /// Total rewrites across all rounds.
    pub rewrites: usize,
    /// Total wall-clock seconds across all rounds.
    pub secs: f64,
}

/// What the pipeline did to one function.
#[derive(Debug, Clone, Default)]
pub struct FunctionReport {
    /// Kernel name.
    pub name: String,
    /// Fixed-point rounds executed.
    pub rounds: usize,
    /// Static instruction count before the pipeline.
    pub insts_before: usize,
    /// Static instruction count after the pipeline.
    pub insts_after: usize,
    /// One entry per pipeline slot, in pipeline order. The same pass may
    /// appear in several slots (e.g. `copy-prop` after CSE).
    pub passes: Vec<PassRunStats>,
}

impl FunctionReport {
    /// Total rewrites across every slot named `pass`.
    pub fn rewrites(&self, pass: &str) -> usize {
        self.passes
            .iter()
            .filter(|p| p.name == pass)
            .map(|p| p.rewrites)
            .sum()
    }

    /// Total rewrites across the whole pipeline.
    pub fn total_rewrites(&self) -> usize {
        self.passes.iter().map(|p| p.rewrites).sum()
    }
}

/// Per-kernel reports for a module.
#[derive(Debug, Clone, Default)]
pub struct ModuleReport {
    pub kernels: Vec<FunctionReport>,
}

impl ModuleReport {
    /// Total rewrites across every kernel for slots named `pass`.
    pub fn rewrites(&self, pass: &str) -> usize {
        self.kernels.iter().map(|k| k.rewrites(pass)).sum()
    }

    /// Total rewrites across every kernel and slot.
    pub fn total_rewrites(&self) -> usize {
        self.kernels.iter().map(|k| k.total_rewrites()).sum()
    }

    /// Report for one kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&FunctionReport> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// An ordered pipeline of passes plus the fixed-point driver.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// An empty pipeline (runs nothing).
    pub fn new() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// Append a pass to the pipeline.
    pub fn push(&mut self, p: Box<dyn Pass>) -> &mut Self {
        self.passes.push(p);
        self
    }

    /// The standard pipeline for an optimization level. `VariableReuse`
    /// runs the exact sequence the paper's automated-O1 experiment used;
    /// `Loop` inserts the loop tier between CSE cleanup and the final DCE.
    pub fn for_level(level: OptLevel) -> Self {
        let mut pm = PassManager::new();
        if level == OptLevel::None {
            return pm;
        }
        pm.push(Box::new(ConstFold));
        pm.push(Box::new(CopyProp));
        if matches!(level, OptLevel::VariableReuse | OptLevel::Loop) {
            pm.push(Box::new(Cse));
            pm.push(Box::new(CopyProp));
        }
        if level == OptLevel::Loop {
            pm.push(Box::new(Licm));
            pm.push(Box::new(StrengthReduce));
            pm.push(Box::new(Unroll));
        }
        pm.push(Box::new(Dce));
        pm
    }

    /// Drive the pipeline to a fixed point on one function.
    ///
    /// In debug builds the IR verifier runs after every pass and panics,
    /// naming the pass, if a transformation produced malformed IR.
    pub fn run(&self, f: &mut Function) -> FunctionReport {
        let insts_before = f.num_insts();
        let mut slots: Vec<PassRunStats> = self
            .passes
            .iter()
            .map(|p| PassRunStats {
                name: p.name(),
                runs: 0,
                rewrites: 0,
                secs: 0.0,
            })
            .collect();
        let mut an = Analyses::default();
        let mut rounds = 0;
        let mut quiesced = self.passes.is_empty();
        while !quiesced && rounds < MAX_ROUNDS {
            rounds += 1;
            let mut round_rewrites = 0;
            for (si, p) in self.passes.iter().enumerate() {
                let (n, secs) = repro_util::timing::time(|| p.run(f, &mut an));
                if repro_util::metrics::enabled() {
                    repro_util::metrics::observe_secs(&format!("ir.pass.{}", p.name()), secs);
                    repro_util::metrics::counter_add(
                        &format!("ir.rewrites.{}", p.name()),
                        n as u64,
                    );
                }
                if n > 0 {
                    if p.preserves_cfg() {
                        an.invalidate_dataflow();
                    } else {
                        an.invalidate_all();
                    }
                }
                if cfg!(debug_assertions) {
                    if let Err(e) = crate::verify::verify_function(f) {
                        panic!(
                            "IR verifier failed after pass `{}` on `{}`: {e}\n{f}",
                            p.name(),
                            f.name
                        );
                    }
                }
                snapshot(f, rounds, si, p.name(), n);
                slots[si].runs += 1;
                slots[si].rewrites += n;
                slots[si].secs += secs;
                round_rewrites += n;
            }
            quiesced = round_rewrites == 0;
        }
        debug_assert!(
            quiesced,
            "pass pipeline did not quiesce within {MAX_ROUNDS} rounds on `{}`",
            f.name
        );
        FunctionReport {
            name: f.name.clone(),
            rounds,
            insts_before,
            insts_after: f.num_insts(),
            passes: slots,
        }
    }
}

/// Best-effort IR dump between passes, gated on `OCL_IR_SNAPSHOT`:
/// `1`/`stderr` prints to stderr, anything else names a directory that
/// receives one file per (kernel, round, slot) that rewrote something.
fn snapshot(f: &Function, round: usize, slot: usize, pass: &str, rewrites: usize) {
    if rewrites == 0 {
        return;
    }
    let Ok(dest) = std::env::var("OCL_IR_SNAPSHOT") else {
        return;
    };
    let text = format!(
        "; {}: round {round} slot {slot} `{pass}` ({rewrites} rewrites)\n{f}",
        f.name
    );
    if dest == "1" || dest == "stderr" {
        eprintln!("{text}");
    } else {
        let _ = std::fs::create_dir_all(&dest);
        let _ = std::fs::write(
            format!("{dest}/{}_r{round:02}_s{slot:02}_{pass}.ir", f.name),
            text,
        );
    }
}

/// Run the standard pipeline for `level` on one function.
pub fn optimize_function(f: &mut Function, level: OptLevel) -> FunctionReport {
    PassManager::for_level(level).run(f)
}

/// Run the standard pipeline for `level` on every kernel of a module.
pub fn optimize_module(m: &mut Module, level: OptLevel) -> ModuleReport {
    let pm = PassManager::for_level(level);
    ModuleReport {
        kernels: m.kernels.iter_mut().map(|k| pm.run(k)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Param;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::Operand;
    use crate::{BinOp, Builtin, CmpOp};

    /// Kernel with a redundant load and a foldable constant, shaped like the
    /// backprop Listing 1 pattern.
    fn redundant_kernel() -> Function {
        let mut b = FunctionBuilder::new(
            "k",
            vec![Param {
                name: "delta".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let gid = b.workitem(Builtin::GlobalId(0));
        let p1 = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v1 = b.load(p1.into(), Scalar::F32, AddressSpace::Global);
        // Same address computed and loaded a second time.
        let p2 = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v2 = b.load(p2.into(), Scalar::F32, AddressSpace::Global);
        let s = b.bin(BinOp::Add, Scalar::F32, v1.into(), v2.into());
        // Foldable: 2 + 3.
        let c = b.bin(
            BinOp::Add,
            Scalar::I32,
            Operand::imm_i32(2),
            Operand::imm_i32(3),
        );
        let addr = b.gep(Operand::Reg(b.param(0)), c.into(), 4, AddressSpace::Global);
        b.store(addr.into(), s.into(), Scalar::F32, AddressSpace::Global);
        b.ret();
        b.finish()
    }

    fn count_loads(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.op, crate::Op::Load { .. }))
            .count()
    }

    #[test]
    fn variable_reuse_removes_redundant_load() {
        let mut f = redundant_kernel();
        assert_eq!(count_loads(&f), 2);
        let report = optimize_function(&mut f, OptLevel::VariableReuse);
        assert!(report.rewrites("cse") >= 1, "report: {report:?}");
        assert_eq!(count_loads(&f), 1, "after:\n{f}");
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn basic_level_keeps_loads() {
        let mut f = redundant_kernel();
        optimize_function(&mut f, OptLevel::Basic);
        assert_eq!(count_loads(&f), 2);
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn opt_none_is_identity() {
        let mut f = redundant_kernel();
        let before = f.clone();
        let report = optimize_function(&mut f, OptLevel::None);
        assert_eq!(report.total_rewrites(), 0);
        assert_eq!(report.rounds, 0);
        assert_eq!(f, before);
    }

    #[test]
    fn report_tracks_rounds_and_sizes() {
        let mut f = redundant_kernel();
        let report = optimize_function(&mut f, OptLevel::VariableReuse);
        assert!(report.rounds >= 1 && report.rounds < MAX_ROUNDS);
        assert_eq!(report.insts_after, f.num_insts());
        assert!(report.insts_after < report.insts_before);
        // Every slot ran every round.
        for s in &report.passes {
            assert_eq!(s.runs, report.rounds, "slot {}", s.name);
        }
    }

    /// for (i = 0; i < 4; i++) out[i] = x * 8  — exercises the whole loop
    /// tier: the multiply is hoisted and strength-reduced, the loop is
    /// unrolled, and the bookkeeping dies.
    fn loop_kernel() -> Function {
        let mut b = FunctionBuilder::new(
            "k",
            vec![Param {
                name: "out".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let x = b.workitem(Builtin::GlobalId(0));
        let i = b.mov(Scalar::U32, Operand::imm_u32(0));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let c = b.cmp(CmpOp::Lt, Scalar::U32, i.into(), Operand::imm_u32(4));
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let v = b.bin(BinOp::Mul, Scalar::U32, x.into(), Operand::imm_u32(8));
        let addr = b.gep(Operand::Reg(b.param(0)), i.into(), 4, AddressSpace::Global);
        b.store(addr.into(), v.into(), Scalar::U32, AddressSpace::Global);
        let i2 = b.bin(BinOp::Add, Scalar::U32, i.into(), Operand::imm_u32(1));
        b.assign(i, Scalar::U32, i2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret();
        b.finish()
    }

    #[test]
    fn loop_tier_flattens_constant_loop() {
        let mut f = loop_kernel();
        let report = optimize_function(&mut f, OptLevel::Loop);
        crate::verify::verify_function(&f).unwrap();
        assert!(report.rewrites("unroll") >= 1, "report: {report:?}");
        assert!(report.rewrites("licm") >= 1, "report: {report:?}");
        assert!(
            report.rewrites("strength-reduce") >= 1,
            "report: {report:?}"
        );
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert!(
            LoopForest::find(&f, &cfg, &dom).loops.is_empty(),
            "loop must be gone:\n{f}"
        );
    }

    #[test]
    fn loop_level_matches_reuse_on_loop_free_code() {
        let mut a = redundant_kernel();
        let mut b = redundant_kernel();
        optimize_function(&mut a, OptLevel::VariableReuse);
        optimize_function(&mut b, OptLevel::Loop);
        // Strength reduction may still fire, but on this kernel there is
        // nothing to reduce: results must be identical.
        assert_eq!(a, b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "IR verifier failed after pass `breaker`")]
    fn broken_pass_is_caught_by_debug_verifier() {
        struct Breaker;
        impl Pass for Breaker {
            fn name(&self) -> &'static str {
                "breaker"
            }
            fn run(&self, f: &mut Function, _an: &mut Analyses) -> usize {
                // Point the terminator at a block that does not exist.
                f.blocks[0].term = crate::Terminator::Br {
                    target: crate::BlockId(999),
                };
                1
            }
        }
        let mut pm = PassManager::new();
        pm.push(Box::new(Breaker));
        let mut f = redundant_kernel();
        pm.run(&mut f);
    }

    #[test]
    fn opt_level_parse_round_trips() {
        for level in OptLevel::ALL {
            assert_eq!(OptLevel::parse(level.flag_name()), Some(level));
        }
        assert_eq!(OptLevel::parse("O1"), Some(OptLevel::VariableReuse));
        assert_eq!(OptLevel::parse("bogus"), None);
    }
}
