//! IR optimization passes.
//!
//! The pass set deliberately mirrors the transformations the paper leans on:
//! * [`cse`] is the automated form of the §III-B "O1: variable reuse"
//!   optimization — it removes redundant global loads and recomputed
//!   subexpressions exactly the way the authors did by hand in Listing 2.
//! * [`const_fold`] and [`copy_prop`] clean up front-end output.
//! * [`dce`] removes the dead code those passes leave behind.

pub mod const_fold;
pub mod copy_prop;
pub mod cse;
pub mod dce;

use crate::func::{Function, Module};

/// Optimization level, matching the flags both flows accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Front-end output as-is.
    None,
    /// Constant folding + copy propagation + DCE.
    #[default]
    Basic,
    /// `Basic` plus CSE / variable-reuse (the automated "O1" of §III-B).
    VariableReuse,
}

/// Statistics returned by [`optimize_function`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassStats {
    pub folded: usize,
    pub copies_propagated: usize,
    pub cse_replaced: usize,
    pub dce_removed: usize,
}

impl PassStats {
    fn merge(&mut self, other: PassStats) {
        self.folded += other.folded;
        self.copies_propagated += other.copies_propagated;
        self.cse_replaced += other.cse_replaced;
        self.dce_removed += other.dce_removed;
    }
}

/// Run the pass pipeline on one function.
pub fn optimize_function(f: &mut Function, level: OptLevel) -> PassStats {
    let mut total = PassStats::default();
    if level == OptLevel::None {
        return total;
    }
    // Two rounds: CSE exposes copies, copy-prop exposes folds, DCE cleans up.
    for _ in 0..2 {
        let mut stats = PassStats {
            folded: const_fold::run(f),
            copies_propagated: copy_prop::run(f),
            ..Default::default()
        };
        if level == OptLevel::VariableReuse {
            stats.cse_replaced = cse::run(f);
            stats.copies_propagated += copy_prop::run(f);
        }
        stats.dce_removed = dce::run(f);
        let quiescent = stats == PassStats::default();
        total.merge(stats);
        if quiescent {
            break;
        }
    }
    total
}

/// Run the pass pipeline on every kernel of a module.
pub fn optimize_module(m: &mut Module, level: OptLevel) -> PassStats {
    let mut total = PassStats::default();
    for k in &mut m.kernels {
        total.merge(optimize_function(k, level));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Param;
    use crate::types::{AddressSpace, Scalar, Type};
    use crate::value::Operand;
    use crate::{BinOp, Builtin};

    /// Kernel with a redundant load and a foldable constant, shaped like the
    /// backprop Listing 1 pattern.
    fn redundant_kernel() -> Function {
        let mut b = FunctionBuilder::new(
            "k",
            vec![Param {
                name: "delta".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let gid = b.workitem(Builtin::GlobalId(0));
        let p1 = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v1 = b.load(p1.into(), Scalar::F32, AddressSpace::Global);
        // Same address computed and loaded a second time.
        let p2 = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v2 = b.load(p2.into(), Scalar::F32, AddressSpace::Global);
        let s = b.bin(BinOp::Add, Scalar::F32, v1.into(), v2.into());
        // Foldable: 2 + 3.
        let c = b.bin(
            BinOp::Add,
            Scalar::I32,
            Operand::imm_i32(2),
            Operand::imm_i32(3),
        );
        let addr = b.gep(Operand::Reg(b.param(0)), c.into(), 4, AddressSpace::Global);
        b.store(addr.into(), s.into(), Scalar::F32, AddressSpace::Global);
        b.ret();
        b.finish()
    }

    fn count_loads(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i.op, crate::Op::Load { .. }))
            .count()
    }

    #[test]
    fn variable_reuse_removes_redundant_load() {
        let mut f = redundant_kernel();
        assert_eq!(count_loads(&f), 2);
        let stats = optimize_function(&mut f, OptLevel::VariableReuse);
        assert!(stats.cse_replaced >= 1, "stats: {stats:?}");
        assert_eq!(count_loads(&f), 1, "after:\n{f}");
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn basic_level_keeps_loads() {
        let mut f = redundant_kernel();
        optimize_function(&mut f, OptLevel::Basic);
        assert_eq!(count_loads(&f), 2);
        crate::verify::verify_function(&f).unwrap();
    }

    #[test]
    fn opt_none_is_identity() {
        let mut f = redundant_kernel();
        let before = f.clone();
        let stats = optimize_function(&mut f, OptLevel::None);
        assert_eq!(stats, PassStats::default());
        assert_eq!(f, before);
    }
}
