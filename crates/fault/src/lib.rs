//! Process-global, seeded, deterministic fault-injection engine.
//!
//! Production code is threaded with named [`FaultPoint`]s — fixed places
//! where an adverse condition *could* happen (a disk write hitting ENOSPC,
//! a worker thread panicking, a DRAM word losing a bit). Each point is one
//! call to [`fire`] (or [`fire_param`]) on its hot path. Mirroring the
//! metrics registry and the simulator's `NopSink`, the engine is **off by
//! default and observably free while off**: every probe checks one relaxed
//! atomic load and returns before touching a lock, a clock, or an
//! allocation. The chaos tests assert that a disarmed build produces
//! bit-identical cycles and stats to an uninstrumented one.
//!
//! Arming is explicit: [`install`] takes a [`FaultPlan`] — a seed plus a
//! per-point schedule of `(probability, max_fires, param)` — and every
//! subsequent probe consults a SplitMix64 stream seeded from
//! `plan.seed ^ fnv1a(point name)`. Streams are per-point, so two points
//! never perturb each other's decision sequences; within one point the
//! decision sequence is a pure function of the seed and the call count.
//! Scenarios that need byte-identical outcome sets across runs therefore
//! either use probabilities of 0/1 (order-independent) or evaluate the
//! point from a single thread — the `repro chaos` driver does both.
//!
//! The wire form (`FaultPlan::parse` / `to_json`) exists so plans can
//! travel through CLI flags and CI scripts; the scenario matrix in
//! `repro-core::chaos` builds plans programmatically.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use repro_util::{metrics, Json, Rng, ToJson};

/// Every named place the engine can inject a fault. The discriminant
/// indexes the per-point state tables; the string name is the stable wire
/// identity used by plans, metrics (`fault.fired.<name>`), and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum FaultPoint {
    /// Disk cache directory fails to open/probe writable (read-only fs).
    CacheDiskOpen,
    /// Disk cache write returns ENOSPC-style failure.
    CacheDiskEnospc,
    /// Disk cache write truncates the envelope (torn write).
    CacheDiskShortWrite,
    /// Disk cache entry payload is corrupted after sealing.
    CacheDiskCorrupt,
    /// Scheduled job body panics mid-run.
    SchedJobPanic,
    /// Scheduled job body sleeps `param` extra milliseconds (lets
    /// deadlines genuinely fire).
    SchedJobLatency,
    /// A worker unpark is dropped on submit (liveness must come from the
    /// park timeout, not the notification).
    SchedLostUnpark,
    /// One DRAM word is bit-flipped before kernel launch; `param` packs
    /// `word_offset << 8 | bit_index`.
    SimDramBitflip,
    /// One result word is bit-flipped at L2 writeback (after the run,
    /// before readback); same `param` packing.
    SimL2Bitflip,
    /// Serve input line is truncated mid-JSON.
    ServeLineTruncate,
    /// Serve input line has an invalid UTF-8 byte spliced in.
    ServeLineInvalidUtf8,
    /// Serve input line is inflated past the max-line-bytes guard.
    ServeLineOversize,
}

/// All points, in discriminant order (index == `point as usize`).
pub const ALL_POINTS: [FaultPoint; 12] = [
    FaultPoint::CacheDiskOpen,
    FaultPoint::CacheDiskEnospc,
    FaultPoint::CacheDiskShortWrite,
    FaultPoint::CacheDiskCorrupt,
    FaultPoint::SchedJobPanic,
    FaultPoint::SchedJobLatency,
    FaultPoint::SchedLostUnpark,
    FaultPoint::SimDramBitflip,
    FaultPoint::SimL2Bitflip,
    FaultPoint::ServeLineTruncate,
    FaultPoint::ServeLineInvalidUtf8,
    FaultPoint::ServeLineOversize,
];

impl FaultPoint {
    /// Stable wire name (plans, metrics, chaos reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::CacheDiskOpen => "cache.disk.open",
            FaultPoint::CacheDiskEnospc => "cache.disk.enospc",
            FaultPoint::CacheDiskShortWrite => "cache.disk.short_write",
            FaultPoint::CacheDiskCorrupt => "cache.disk.corrupt",
            FaultPoint::SchedJobPanic => "sched.job.panic",
            FaultPoint::SchedJobLatency => "sched.job.latency",
            FaultPoint::SchedLostUnpark => "sched.lost_unpark",
            FaultPoint::SimDramBitflip => "sim.mem.dram_bitflip",
            FaultPoint::SimL2Bitflip => "sim.mem.l2_bitflip",
            FaultPoint::ServeLineTruncate => "serve.line.truncate",
            FaultPoint::ServeLineInvalidUtf8 => "serve.line.invalid_utf8",
            FaultPoint::ServeLineOversize => "serve.line.oversize",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<FaultPoint> {
        ALL_POINTS.iter().copied().find(|p| p.name() == name)
    }
}

/// One row of a plan: how often a point fires and with what parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    pub point: FaultPoint,
    /// Probability in `[0.0, 1.0]` that an evaluation fires.
    pub prob: f64,
    /// Stop firing after this many fires (`None` = unlimited).
    pub max_fires: Option<u64>,
    /// Point-specific parameter (latency ms, packed bit position, …).
    pub param: u64,
}

/// A seed plus a per-point schedule — the complete, serializable
/// description of one adverse world.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub points: Vec<PointSpec>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            points: Vec::new(),
        }
    }

    /// Add a schedule row (builder style).
    pub fn with(
        mut self,
        point: FaultPoint,
        prob: f64,
        max_fires: Option<u64>,
        param: u64,
    ) -> Self {
        self.points.push(PointSpec {
            point,
            prob,
            max_fires,
            param,
        });
        self
    }

    /// `prob = 1.0`, unlimited — the point fires on every evaluation.
    pub fn always(self, point: FaultPoint, param: u64) -> Self {
        self.with(point, 1.0, None, param)
    }

    /// `prob = 1.0`, exactly `n` fires, then the point goes quiet.
    pub fn times(self, point: FaultPoint, n: u64, param: u64) -> Self {
        self.with(point, 1.0, Some(n), param)
    }

    /// Parse the JSON wire form produced by [`ToJson`]. Unknown point
    /// names are an error (a plan that silently drops a row would make a
    /// chaos scenario vacuously pass).
    pub fn parse(input: &str) -> Result<FaultPlan, String> {
        let j = Json::parse(input).map_err(|e| format!("fault plan: {e}"))?;
        let seed = j
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("fault plan: missing `seed`")?;
        let mut plan = FaultPlan::new(seed);
        let rows = j
            .get("points")
            .and_then(Json::as_array)
            .ok_or("fault plan: missing `points` array")?;
        for row in rows {
            let name = row
                .get("point")
                .and_then(Json::as_str)
                .ok_or("fault plan: point row missing `point`")?;
            let point = FaultPoint::from_name(name)
                .ok_or_else(|| format!("fault plan: unknown point `{name}`"))?;
            let prob = row.get("prob").and_then(Json::as_f64).unwrap_or(1.0);
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("fault plan: prob {prob} out of [0,1] for `{name}`"));
            }
            let max_fires = row.get("max_fires").and_then(Json::as_u64);
            let param = row.get("param").and_then(Json::as_u64).unwrap_or(0);
            plan.points.push(PointSpec {
                point,
                prob,
                max_fires,
                param,
            });
        }
        Ok(plan)
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", self.seed.to_json()),
            (
                "points",
                Json::Array(
                    self.points
                        .iter()
                        .map(|s| {
                            let mut fields = vec![
                                ("point", Json::Str(s.point.name().to_string())),
                                ("prob", s.prob.to_json()),
                            ];
                            if let Some(m) = s.max_fires {
                                fields.push(("max_fires", m.to_json()));
                            }
                            fields.push(("param", s.param.to_json()));
                            Json::obj(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

const N: usize = ALL_POINTS.len();

/// Per-point armed state. One decision stream per point, seeded from the
/// plan seed xor the FNV-1a hash of the point name, so adding a point to a
/// plan never shifts another point's sequence.
struct Engine {
    specs: [Option<PointSpec>; N],
    rngs: [Rng; N],
    evaluated: [u64; N],
    fired: [u64; N],
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Engine {
    fn new(plan: &FaultPlan) -> Engine {
        let mut specs: [Option<PointSpec>; N] = std::array::from_fn(|_| None);
        for s in &plan.points {
            specs[s.point as usize] = Some(s.clone());
        }
        Engine {
            specs,
            rngs: std::array::from_fn(|i| Rng::new(plan.seed ^ fnv1a(ALL_POINTS[i].name()))),
            evaluated: [0; N],
            fired: [0; N],
        }
    }

    fn fire(&mut self, point: FaultPoint) -> Option<u64> {
        let i = point as usize;
        let spec = self.specs[i].as_ref()?;
        self.evaluated[i] += 1;
        if let Some(max) = spec.max_fires {
            if self.fired[i] >= max {
                return None;
            }
        }
        // 0.0 and 1.0 decide without consuming a draw, so all-or-nothing
        // schedules are independent of evaluation order across threads.
        let hit = if spec.prob >= 1.0 {
            true
        } else if spec.prob <= 0.0 {
            false
        } else {
            (self.rngs[i].next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < spec.prob
        };
        if !hit {
            return None;
        }
        self.fired[i] += 1;
        Some(spec.param)
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn engine() -> &'static Mutex<Option<Engine>> {
    static ENGINE: OnceLock<Mutex<Option<Engine>>> = OnceLock::new();
    ENGINE.get_or_init(|| Mutex::new(None))
}

fn engine_lock() -> MutexGuard<'static, Option<Engine>> {
    // A worker thread may die by *injected* panic while probing other
    // points; the engine state is append-only counters, safe to reuse.
    engine().lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm the engine with `plan`. Replaces any previous plan and resets all
/// per-point streams and counters.
pub fn install(plan: &FaultPlan) {
    let mut g = engine_lock();
    *g = Some(Engine::new(plan));
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm and drop all state (the default). Probes go back to one relaxed
/// load.
pub fn clear() {
    let mut g = engine_lock();
    ARMED.store(false, Ordering::Relaxed);
    *g = None;
}

/// Whether a plan is currently installed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Evaluate `point`: `true` means the caller must inject its fault now.
/// Disarmed cost: one relaxed atomic load.
#[inline]
pub fn fire(point: FaultPoint) -> bool {
    if !ARMED.load(Ordering::Relaxed) {
        return false;
    }
    fire_slow(point).is_some()
}

/// Like [`fire`], but hands back the schedule row's `param` on a hit —
/// for points that need a magnitude (latency ms, packed bit position).
#[inline]
pub fn fire_param(point: FaultPoint) -> Option<u64> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    fire_slow(point)
}

#[cold]
fn fire_slow(point: FaultPoint) -> Option<u64> {
    let param = engine_lock().as_mut().and_then(|e| e.fire(point))?;
    metrics::counter_add("fault.fired", 1);
    metrics::counter_add(&format!("fault.fired.{}", point.name()), 1);
    Some(param)
}

/// Per-point `(name, evaluated, fired)` tallies since [`install`], for
/// points named by the plan. Empty when disarmed.
pub fn report() -> Vec<(&'static str, u64, u64)> {
    let g = engine_lock();
    let Some(e) = g.as_ref() else {
        return Vec::new();
    };
    ALL_POINTS
        .iter()
        .filter(|&&p| e.specs[p as usize].is_some())
        .map(|&p| (p.name(), e.evaluated[p as usize], e.fired[p as usize]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The engine is process-global; tests that arm it must not
    /// interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_probes_never_fire() {
        let _g = serial();
        clear();
        assert!(!armed());
        for p in ALL_POINTS {
            assert!(!fire(p));
            assert_eq!(fire_param(p), None);
        }
        assert!(report().is_empty());
    }

    #[test]
    fn unplanned_points_stay_quiet_while_armed() {
        let _g = serial();
        install(&FaultPlan::new(1).always(FaultPoint::SchedJobPanic, 0));
        assert!(!fire(FaultPoint::CacheDiskEnospc));
        assert!(fire(FaultPoint::SchedJobPanic));
        clear();
    }

    #[test]
    fn max_fires_caps_the_schedule() {
        let _g = serial();
        install(&FaultPlan::new(2).times(FaultPoint::CacheDiskEnospc, 2, 0));
        let fires: Vec<bool> = (0..5).map(|_| fire(FaultPoint::CacheDiskEnospc)).collect();
        assert_eq!(fires, [true, true, false, false, false]);
        let rep = report();
        assert_eq!(rep, vec![("cache.disk.enospc", 5, 2)]);
        clear();
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let _g = serial();
        let plan = FaultPlan::new(0xDEAD).with(FaultPoint::SimDramBitflip, 0.3, None, 42);
        let run = || -> Vec<Option<u64>> {
            install(&plan);
            let v = (0..64)
                .map(|_| fire_param(FaultPoint::SimDramBitflip))
                .collect();
            clear();
            v
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|d| d.is_some()), "0.3 over 64 draws fires");
        assert!(a.iter().any(|d| d.is_none()), "0.3 over 64 draws skips");
        assert!(
            a.iter().flatten().all(|&p| p == 42),
            "param comes from the spec"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let _g = serial();
        let decisions = |seed: u64| -> Vec<bool> {
            install(&FaultPlan::new(seed).with(FaultPoint::SchedLostUnpark, 0.5, None, 0));
            let v = (0..64).map(|_| fire(FaultPoint::SchedLostUnpark)).collect();
            clear();
            v
        };
        assert_ne!(decisions(1), decisions(2));
    }

    #[test]
    fn plan_json_round_trips() {
        let plan = FaultPlan::new(99)
            .with(FaultPoint::CacheDiskCorrupt, 0.25, Some(3), 7)
            .always(FaultPoint::ServeLineOversize, 1 << 20);
        let back = FaultPlan::parse(&plan.to_json().to_pretty()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn plan_parse_rejects_unknown_point_and_bad_prob() {
        assert!(
            FaultPlan::parse(r#"{"seed":1,"points":[{"point":"no.such"}]}"#)
                .unwrap_err()
                .contains("unknown point")
        );
        assert!(FaultPlan::parse(
            r#"{"seed":1,"points":[{"point":"sched.job.panic","prob":1.5}]}"#
        )
        .unwrap_err()
        .contains("out of [0,1]"));
    }

    #[test]
    fn point_names_round_trip() {
        for p in ALL_POINTS {
            assert_eq!(FaultPoint::from_name(p.name()), Some(p));
        }
        assert_eq!(FaultPoint::from_name("nope"), None);
    }
}
