//! Binds the scheduler's pure-data [`JobRequest`] to the suite's actual
//! execution paths — the one place a request becomes runnable code.
//!
//! `repro-sched` sits *below* this crate (it knows nothing about
//! benchmarks, flows, or simulators), so a [`Job`] carries its execution
//! as a closure; [`instantiate`] is where that closure is bound. Every
//! entry point that used to own a private run loop — `repro run`, `check`,
//! `bench-sim`, `perf-report`, and the long-running `repro serve` — builds
//! requests, instantiates them here, and submits the batch to one
//! [`repro_sched::Executor`].
//!
//! Determinism contract: [`run_request`] is a pure function of the request
//! (the simulator is deterministic, compile results are content-addressed),
//! so a batch pushed through the work-stealing executor is bit-identical
//! to running [`run_oneshot`] over the same requests in a plain loop.

use fpga_arch::{Device, VortexConfig};
use ocl_ir::interp::{self, KernelArg, Limits, Memory, NdRange};
use repro_diag::{run_isolated, ReproError};
use repro_sched::{
    ArgSpec, Flow, Job, JobCtx, JobRequest, JobStats, Payload, DEFAULT_MAX_CYCLES,
    DEFAULT_MAX_INSTRUCTIONS,
};
use vortex_rt::{Arg, VxSession};
use vortex_sim::SimConfig;

use crate::runner::DEFAULT_OPT;
use crate::spec::Scale;

/// The simulated machine a request describes, with the watchdog budgets
/// every scheduled job runs under (unset budgets fall back to the `repro
/// check` ceilings, [`DEFAULT_MAX_CYCLES`] / [`DEFAULT_MAX_INSTRUCTIONS`]).
pub fn sim_config(req: &JobRequest) -> SimConfig {
    let mut cfg = SimConfig::new(VortexConfig::new(req.cores, req.warps, req.threads));
    cfg.max_cycles = req.max_cycles.unwrap_or(DEFAULT_MAX_CYCLES);
    cfg.max_instructions = req.max_instructions.unwrap_or(DEFAULT_MAX_INSTRUCTIONS);
    cfg.sim_threads = req.sim_threads;
    cfg.reference_mode = req.reference;
    cfg
}

/// Execute one request. This is the body of every scheduled job; the
/// executor wraps it in panic isolation, the sequential reference path
/// ([`run_oneshot`]) calls it directly. Under an armed `repro-obs` the
/// whole execution records as one `flow.*` span, with the cache-lookup and
/// compile-stage spans nesting beneath it.
pub fn run_request(req: &JobRequest, ctx: &JobCtx) -> Result<JobStats, ReproError> {
    let span_name = match req.flow {
        Flow::Interp => "flow.interp",
        Flow::Vortex => "flow.vortex",
        Flow::Hls => "flow.hls",
    };
    repro_obs::span(span_name, || run_request_inner(req, ctx))
}

fn run_request_inner(req: &JobRequest, _ctx: &JobCtx) -> Result<JobStats, ReproError> {
    match &req.payload {
        Payload::Bench { name, paper_scale } => {
            let b = crate::benchmark(name)
                .ok_or_else(|| ReproError::harness(format!("unknown benchmark `{name}`")))?;
            let scale = if *paper_scale {
                Scale::Paper
            } else {
                Scale::Test
            };
            let level = req.opt.unwrap_or(DEFAULT_OPT);
            match req.flow {
                Flow::Interp => {
                    let o = crate::run_on_interp(&b, scale, level)?;
                    Ok(JobStats {
                        cycles: o.cycles,
                        instructions: o.instructions,
                    })
                }
                Flow::Vortex => {
                    let cfg = sim_config(req);
                    let o = crate::run_vortex_at(&b, scale, &cfg, level)?;
                    Ok(JobStats {
                        cycles: o.cycles,
                        instructions: o.instructions,
                    })
                }
                Flow::Hls => match crate::run_hls_at(&b, scale, &Device::mx2100(), level)? {
                    Ok(o) => Ok(JobStats {
                        cycles: o.cycles,
                        instructions: o.instructions,
                    }),
                    Err(f) => Err(f.into()),
                },
            }
        }
        Payload::Source {
            source,
            kernel,
            nd,
            buffers,
            args,
        } => {
            let nd = NdRange {
                global: [nd.gx, nd.gy, 1],
                local: [nd.lx, nd.ly, 1],
            };
            match req.flow {
                Flow::Vortex => run_source_vortex(req, source, kernel, &nd, buffers, args),
                Flow::Interp => run_source_interp(req, source, kernel, &nd, buffers, args),
                Flow::Hls => Err(ReproError::harness(
                    "inline-source jobs are not supported on the hls flow \
                     (synthesis gating needs a named suite benchmark)",
                )),
            }
        }
    }
}

/// Inline source on the Vortex flow: codegen (through the global compile
/// cache), zero-initialized device buffers, one launch, no verification
/// beyond the run itself. `opt: None` compiles the source as written.
fn run_source_vortex(
    req: &JobRequest,
    source: &str,
    kernel: &str,
    nd: &NdRange,
    buffers: &[u32],
    args: &[ArgSpec],
) -> Result<JobStats, ReproError> {
    let cfg = sim_config(req);
    let kernels = repro_cache::global().codegen_vortex(source, req.opt, cfg.hw.threads)?;
    let compiled = kernels
        .into_iter()
        .find(|k| k.name == kernel)
        .ok_or_else(|| ReproError::harness(format!("kernel `{kernel}` not found in source")))?;
    let mut sess = VxSession::new(cfg, compiled);
    let bufs: Vec<vortex_rt::Buffer> = buffers
        .iter()
        .map(|&words| sess.alloc(words * 4))
        .collect::<Result<_, _>>()
        .map_err(ReproError::from)?;
    let args = args
        .iter()
        .map(|a| {
            Ok(match a {
                ArgSpec::Buf(i) => Arg::Buf(*bufs.get(*i).ok_or_else(|| {
                    ReproError::harness(format!("arg references buffer {i} of {}", bufs.len()))
                })?),
                ArgSpec::I32(v) => Arg::I32(*v),
                ArgSpec::U32(v) => Arg::U32(*v),
                ArgSpec::F32(v) => Arg::F32(*v),
            })
        })
        .collect::<Result<Vec<_>, ReproError>>()?;
    let r = sess.launch(&args, nd)?;
    Ok(JobStats {
        cycles: r.stats.cycles,
        instructions: r.stats.instructions,
    })
}

/// Inline source on the reference interpreter. The per-item step limit is
/// derived from the request's instruction budget so a runaway kernel dies
/// typed here too. `opt: None` interprets the source as written.
fn run_source_interp(
    req: &JobRequest,
    source: &str,
    kernel: &str,
    nd: &NdRange,
    buffers: &[u32],
    args: &[ArgSpec],
) -> Result<JobStats, ReproError> {
    let level = req.opt.unwrap_or(ocl_ir::passes::OptLevel::None);
    let module = repro_cache::global().optimize(source, level)?;
    let f = module
        .kernel(kernel)
        .ok_or_else(|| ReproError::harness(format!("kernel `{kernel}` not found in source")))?;
    let mut mem = Memory::new(32 << 20);
    let addrs: Vec<u32> = buffers
        .iter()
        .map(|&words| mem.try_alloc_u32(&vec![0u32; words as usize]))
        .collect::<Result<_, _>>()?;
    let args = args
        .iter()
        .map(|a| {
            Ok(match a {
                ArgSpec::Buf(i) => KernelArg::Ptr(*addrs.get(*i).ok_or_else(|| {
                    ReproError::harness(format!("arg references buffer {i} of {}", addrs.len()))
                })?),
                ArgSpec::I32(v) => KernelArg::I32(*v),
                ArgSpec::U32(v) => KernelArg::U32(*v),
                ArgSpec::F32(v) => KernelArg::F32(*v),
            })
        })
        .collect::<Result<Vec<_>, ReproError>>()?;
    let limits = Limits {
        max_steps_per_item: req.max_instructions.unwrap_or(DEFAULT_MAX_INSTRUCTIONS),
    };
    let r = interp::run_ndrange(f, &args, nd, &mut mem, &limits)?;
    Ok(JobStats {
        cycles: 0,
        instructions: r.steps,
    })
}

/// Bind a request to its execution closure — the form the executor takes.
pub fn instantiate(req: JobRequest) -> Job {
    Job::new(req, run_request)
}

/// Run one request inline, sequentially, under the same panic isolation a
/// worker applies — the reference path the scheduler's results must be
/// bit-identical to.
pub fn run_oneshot(req: &JobRequest) -> Result<JobStats, ReproError> {
    run_isolated(|| run_request(req, &JobCtx::unbounded()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use repro_sched::{ExecConfig, Executor};

    #[test]
    fn bench_job_matches_direct_runner_call() {
        let req = JobRequest::bench("Vecadd", Flow::Vortex);
        let stats = run_oneshot(&req).expect("vecadd runs");
        let cfg = sim_config(&req);
        let direct = crate::run_vortex_at(
            &crate::benchmark("Vecadd").unwrap(),
            Scale::Test,
            &cfg,
            DEFAULT_OPT,
        )
        .expect("direct run");
        assert_eq!(stats.cycles, direct.cycles);
        assert_eq!(stats.instructions, direct.instructions);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn unknown_benchmark_is_a_typed_harness_error() {
        let req = JobRequest::bench("NoSuchBench", Flow::Vortex);
        let err = run_oneshot(&req).unwrap_err();
        assert_eq!(err.kind(), "Harness");
    }

    #[test]
    fn executor_batch_is_bit_identical_to_oneshot() {
        let reqs: Vec<JobRequest> = ["Vecadd", "Sfilter", "Saxpy"]
            .iter()
            .flat_map(|name| {
                [Flow::Vortex, Flow::Interp]
                    .into_iter()
                    .map(|flow| JobRequest::bench(name, flow))
            })
            .collect();
        let sequential: Vec<JobStats> = reqs
            .iter()
            .map(|r| run_oneshot(r).expect("oneshot ok"))
            .collect();
        let exec = Executor::new(ExecConfig::with_workers(2));
        let outcomes = exec.run(reqs.into_iter().map(instantiate).collect());
        assert_eq!(outcomes.len(), sequential.len());
        for (oc, want) in outcomes.iter().zip(&sequential) {
            assert_eq!(oc.stats().expect("scheduled ok"), *want, "{}", oc.label);
        }
    }
}
