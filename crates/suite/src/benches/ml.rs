//! Machine-learning benchmarks: Kmeans, Nearn, Backprop, Streamcluster.
//!
//! Backprop is the paper's §III-B case study: [`BACKPROP_ORIGINAL`]
//! reproduces the Listing 1 structure (redundant loads), [`BACKPROP_O1`]
//! applies the manual variable-reuse rewrite of Listing 2, and
//! [`BACKPROP_O2`] adds the `__pipelined_load` directives of Listing 3.
//! All three compute identical results; only the HLS resource profile
//! changes — that is Table II.

use crate::runner::{expect_close, expect_eq_i32};
use crate::spec::{Benchmark, HostData, LArg, Launch, Prng, Scale, Workload};
use ocl_ir::interp::NdRange;

/// Kmeans (Rodinia): nearest-centroid assignment step.
pub fn kmeans() -> Benchmark {
    Benchmark {
        name: "Kmeans",
        origin: "Rodinia",
        source: r#"
            __kernel void kmeans_assign(__global const float* features,
                                        __global const float* centroids,
                                        __global int* membership,
                                        int n, int k, int dims) {
                int i = get_global_id(0);
                if (i < n) {
                    int best = 0;
                    float best_d = 1e30f;
                    for (int c = 0; c < k; c++) {
                        float d = 0.0f;
                        for (int f = 0; f < dims; f++) {
                            float diff = features[i * dims + f] - centroids[c * dims + f];
                            d += diff * diff;
                        }
                        if (d < best_d) {
                            best_d = d;
                            best = c;
                        }
                    }
                    membership[i] = best;
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(128, 2048) as usize;
            let k = 5usize;
            let dims = 4usize;
            let mut rng = Prng::new(51);
            let features: Vec<f32> = (0..n * dims).map(|_| rng.next_f32() * 10.0).collect();
            let centroids: Vec<f32> = (0..k * dims).map(|_| rng.next_f32() * 10.0).collect();
            let want: Vec<i32> = (0..n)
                .map(|i| {
                    let mut best = 0;
                    let mut best_d = 1e30f32;
                    for c in 0..k {
                        let mut d = 0.0f32;
                        for f in 0..dims {
                            let diff = features[i * dims + f] - centroids[c * dims + f];
                            d += diff * diff;
                        }
                        if d < best_d {
                            best_d = d;
                            best = c as i32;
                        }
                    }
                    best
                })
                .collect();
            let g = (n as u32).next_multiple_of(16);
            Workload {
                buffers: vec![
                    HostData::F32(features),
                    HostData::F32(centroids),
                    HostData::I32(vec![0; n]),
                ],
                launches: vec![Launch {
                    kernel: "kmeans_assign",
                    nd: NdRange::d1(g, 16),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::I32(n as i32),
                        LArg::I32(k as i32),
                        LArg::I32(dims as i32),
                    ],
                }],
                check: Box::new(move |bufs| {
                    expect_eq_i32(bufs[2].as_i32(), &want, "kmeans membership")
                }),
            }
        },
    }
}

/// Nearn (Rodinia nearest neighbor): Euclidean distances to a target.
pub fn nearn() -> Benchmark {
    Benchmark {
        name: "Nearn",
        origin: "Rodinia",
        source: r#"
            __kernel void nearn(__global const float* lat, __global const float* lng,
                                __global float* dist, float tlat, float tlng) {
                int i = get_global_id(0);
                float dx = lat[i] - tlat;
                float dy = lng[i] - tlng;
                dist[i] = sqrt(dx * dx + dy * dy);
            }
        "#,
        workload: |scale| {
            let n = scale.pick(256, 8192) as usize;
            let (tlat, tlng) = (30.0f32, -90.0f32);
            let mut rng = Prng::new(52);
            let lat: Vec<f32> = (0..n).map(|_| rng.next_f32() * 60.0).collect();
            let lng: Vec<f32> = (0..n).map(|_| -rng.next_f32() * 120.0).collect();
            let want: Vec<f32> = (0..n)
                .map(|i| {
                    let dx = lat[i] - tlat;
                    let dy = lng[i] - tlng;
                    (dx * dx + dy * dy).sqrt()
                })
                .collect();
            Workload {
                buffers: vec![
                    HostData::F32(lat),
                    HostData::F32(lng),
                    HostData::F32(vec![0.0; n]),
                ],
                launches: vec![Launch {
                    kernel: "nearn",
                    nd: NdRange::d1(n as u32, 16),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::F32(tlat),
                        LArg::F32(tlng),
                    ],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[2].as_f32(), &want, 1e-4, "nearn dist")
                }),
            }
        },
    }
}

/// Streamcluster (Rodinia): cost of assigning points to the current centers.
pub fn streamcluster() -> Benchmark {
    Benchmark {
        name: "Streamcluster",
        origin: "Rodinia",
        source: r#"
            __kernel void sc_cost(__global const float* points, __global const float* centers,
                                  __global const float* weights, __global float* cost,
                                  int n, int k, int dims) {
                int i = get_global_id(0);
                if (i < n) {
                    float best = 1e30f;
                    for (int c = 0; c < k; c++) {
                        float d = 0.0f;
                        for (int f = 0; f < dims; f++) {
                            float diff = points[i * dims + f] - centers[c * dims + f];
                            d += diff * diff;
                        }
                        if (d < best) best = d;
                    }
                    cost[i] = best * weights[i];
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(128, 2048) as usize;
            let k = 4usize;
            let dims = 3usize;
            let mut rng = Prng::new(53);
            let points: Vec<f32> = (0..n * dims).map(|_| rng.next_f32() * 5.0).collect();
            let centers: Vec<f32> = (0..k * dims).map(|_| rng.next_f32() * 5.0).collect();
            let weights: Vec<f32> = (0..n).map(|_| 0.5 + rng.next_f32()).collect();
            let want: Vec<f32> = (0..n)
                .map(|i| {
                    let mut best = 1e30f32;
                    for c in 0..k {
                        let mut d = 0.0f32;
                        for f in 0..dims {
                            let diff = points[i * dims + f] - centers[c * dims + f];
                            d += diff * diff;
                        }
                        best = best.min(d);
                    }
                    best * weights[i]
                })
                .collect();
            let g = (n as u32).next_multiple_of(16);
            Workload {
                buffers: vec![
                    HostData::F32(points),
                    HostData::F32(centers),
                    HostData::F32(weights),
                    HostData::F32(vec![0.0; n]),
                ],
                launches: vec![Launch {
                    kernel: "sc_cost",
                    nd: NdRange::d1(g, 16),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::Buf(3),
                        LArg::I32(n as i32),
                        LArg::I32(k as i32),
                        LArg::I32(dims as i32),
                    ],
                }],
                check: Box::new(move |bufs| expect_close(bufs[3].as_f32(), &want, 1e-4, "sc cost")),
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Backprop — the three Table II variants (Figure 6).
// ---------------------------------------------------------------------------

/// Shared layerforward kernel (local-memory tile + barrier), plus the
/// adjust-weights kernel of Listing 1 with its redundant loads spelled out.
pub const BACKPROP_ORIGINAL: &str = r#"
    #define ETA 0.3f
    #define MOMENTUM 0.3f
    #define HEIGHT 8

    __kernel void layerforward(__global const float* input, __global const float* weights,
                               __global float* partial, __global const float* bias, int hid) {
        __local float node[8];
        __local float wmat[8][8];
        int by = get_group_id(1);
        int tx = get_local_id(0);
        int ty = get_local_id(1);
        int index = (hid + 1) * HEIGHT * by + (hid + 1) * ty + tx + 1 + (hid + 1);
        int index_in = HEIGHT * by + ty + 1;
        if (tx == 0) node[ty] = input[index_in];
        barrier(CLK_LOCAL_MEM_FENCE);
        wmat[ty][tx] = weights[index] + bias[index];
        barrier(CLK_LOCAL_MEM_FENCE);
        wmat[ty][tx] = wmat[ty][tx] * node[ty];
        barrier(CLK_LOCAL_MEM_FENCE);
        partial[by * HEIGHT * HEIGHT + ty * HEIGHT + tx] = wmat[ty][tx];
    }

    __kernel void bpnn_adjust_weights(__global const float* delta, __global const float* ly,
                                      __global float* w, __global float* oldw, int hid) {
        int by = get_group_id(1);
        int tx = get_local_id(0);
        int ty = get_local_id(1);
        int index = (hid + 1) * HEIGHT * by + (hid + 1) * ty + tx + 1 + (hid + 1);
        int index_y = HEIGHT * by + ty + 1;
        int index_x = tx + 1;
        w[index] += ((ETA * delta[index_x] * ly[index_y]) + (MOMENTUM * oldw[index]));
        oldw[index] = ((ETA * delta[index_x] * ly[index_y]) + (MOMENTUM * oldw[index]));
    }
"#;

/// Listing 2: values loaded once into local variables and reused.
pub const BACKPROP_O1: &str = r#"
    #define ETA 0.3f
    #define MOMENTUM 0.3f
    #define HEIGHT 8

    __kernel void layerforward(__global const float* input, __global const float* weights,
                               __global float* partial, __global const float* bias, int hid) {
        __local float node[8];
        __local float wmat[8][8];
        int by = get_group_id(1);
        int tx = get_local_id(0);
        int ty = get_local_id(1);
        int index = (hid + 1) * HEIGHT * by + (hid + 1) * ty + tx + 1 + (hid + 1);
        int index_in = HEIGHT * by + ty + 1;
        if (tx == 0) node[ty] = input[index_in];
        barrier(CLK_LOCAL_MEM_FENCE);
        wmat[ty][tx] = weights[index] + bias[index];
        barrier(CLK_LOCAL_MEM_FENCE);
        wmat[ty][tx] = wmat[ty][tx] * node[ty];
        barrier(CLK_LOCAL_MEM_FENCE);
        partial[by * HEIGHT * HEIGHT + ty * HEIGHT + tx] = wmat[ty][tx];
    }

    __kernel void bpnn_adjust_weights(__global const float* delta, __global const float* ly,
                                      __global float* w, __global float* oldw, int hid) {
        int by = get_group_id(1);
        int tx = get_local_id(0);
        int ty = get_local_id(1);
        int index = (hid + 1) * HEIGHT * by + (hid + 1) * ty + tx + 1 + (hid + 1);
        int index_y = HEIGHT * by + ty + 1;
        int index_x = tx + 1;
        float delta_value = delta[index_x] * ETA;
        float ly_value = ly[index_y];
        float oldw_value = oldw[index] * MOMENTUM;
        float delta_by_ly = delta_value * ly_value + oldw_value;
        w[index] += delta_by_ly;
        oldw[index] = delta_by_ly;
    }
"#;

/// Listing 3: the remaining loads converted to `__pipelined_load`.
pub const BACKPROP_O2: &str = r#"
    #define ETA 0.3f
    #define MOMENTUM 0.3f
    #define HEIGHT 8

    __kernel void layerforward(__global const float* input, __global const float* weights,
                               __global float* partial, __global const float* bias, int hid) {
        __local float node[8];
        __local float wmat[8][8];
        int by = get_group_id(1);
        int tx = get_local_id(0);
        int ty = get_local_id(1);
        int index = (hid + 1) * HEIGHT * by + (hid + 1) * ty + tx + 1 + (hid + 1);
        int index_in = HEIGHT * by + ty + 1;
        if (tx == 0) node[ty] = input[index_in];
        barrier(CLK_LOCAL_MEM_FENCE);
        wmat[ty][tx] = weights[index] + bias[index];
        barrier(CLK_LOCAL_MEM_FENCE);
        wmat[ty][tx] = wmat[ty][tx] * node[ty];
        barrier(CLK_LOCAL_MEM_FENCE);
        partial[by * HEIGHT * HEIGHT + ty * HEIGHT + tx] = wmat[ty][tx];
    }

    __kernel void bpnn_adjust_weights(__global const float* delta, __global const float* ly,
                                      __global float* w, __global float* oldw, int hid) {
        int by = get_group_id(1);
        int tx = get_local_id(0);
        int ty = get_local_id(1);
        int index = (hid + 1) * HEIGHT * by + (hid + 1) * ty + tx + 1 + (hid + 1);
        int index_y = HEIGHT * by + ty + 1;
        int index_x = tx + 1;
        float delta_value = __pipelined_load(delta + index_x) * ETA;
        float ly_value = __pipelined_load(ly + index_y);
        float oldw_value = __pipelined_load(oldw + index) * MOMENTUM;
        float delta_by_ly = delta_value * ly_value + oldw_value;
        w[index] = __pipelined_load(w + index) + delta_by_ly;
        oldw[index] = delta_by_ly;
    }
"#;

fn backprop_workload(scale: Scale) -> Workload {
    let height = 8usize;
    let hid = 7usize; // hid + 1 == 8 columns
    let groups_y = scale.pick(2, 16) as usize;
    let rows = height * groups_y;
    let wsize = (hid + 1) * rows + (hid + 1) * height + height + 2; // generous
    let mut rng = Prng::new(54);
    let input: Vec<f32> = (0..rows + 2).map(|_| rng.next_f32()).collect();
    let weights: Vec<f32> = (0..wsize).map(|_| rng.next_f32()).collect();
    let bias: Vec<f32> = (0..wsize).map(|_| rng.next_f32() * 0.1).collect();
    let delta: Vec<f32> = (0..height + 1).map(|_| rng.next_f32()).collect();
    let ly: Vec<f32> = (0..rows + 2).map(|_| rng.next_f32()).collect();
    let w0: Vec<f32> = (0..wsize).map(|_| rng.next_f32()).collect();
    let oldw0: Vec<f32> = (0..wsize).map(|_| rng.next_f32()).collect();
    let partial = vec![0.0f32; groups_y * height * height];

    // Reference layerforward.
    let mut want_partial = partial.clone();
    for by in 0..groups_y {
        for ty in 0..height {
            for tx in 0..height {
                let index = (hid + 1) * height * by + (hid + 1) * ty + tx + 1 + (hid + 1);
                let index_in = height * by + ty + 1;
                let v = (weights[index] + bias[index]) * input[index_in];
                want_partial[by * height * height + ty * height + tx] = v;
            }
        }
    }
    // Reference adjust_weights (same formula for all three variants).
    let mut want_w = w0.clone();
    let mut want_oldw = oldw0.clone();
    for by in 0..groups_y {
        for ty in 0..height {
            for tx in 0..height {
                let index = (hid + 1) * height * by + (hid + 1) * ty + tx + 1 + (hid + 1);
                let index_y = height * by + ty + 1;
                let index_x = tx + 1;
                let dly = 0.3 * delta[index_x] * ly[index_y] + 0.3 * want_oldw[index];
                want_w[index] += dly;
                want_oldw[index] = dly;
            }
        }
    }
    let gx = height as u32;
    let gy = rows as u32;
    Workload {
        buffers: vec![
            HostData::F32(input),
            HostData::F32(weights),
            HostData::F32(partial),
            HostData::F32(bias),
            HostData::F32(delta),
            HostData::F32(ly),
            HostData::F32(w0),
            HostData::F32(oldw0),
        ],
        launches: vec![
            Launch {
                kernel: "layerforward",
                nd: NdRange::d2(gx, gy, 8, 8),
                args: vec![
                    LArg::Buf(0),
                    LArg::Buf(1),
                    LArg::Buf(2),
                    LArg::Buf(3),
                    LArg::I32(hid as i32),
                ],
            },
            Launch {
                kernel: "bpnn_adjust_weights",
                nd: NdRange::d2(gx, gy, 8, 8),
                args: vec![
                    LArg::Buf(4),
                    LArg::Buf(5),
                    LArg::Buf(6),
                    LArg::Buf(7),
                    LArg::I32(hid as i32),
                ],
            },
        ],
        check: Box::new(move |bufs| {
            expect_close(bufs[2].as_f32(), &want_partial, 1e-4, "bp partial")?;
            expect_close(bufs[6].as_f32(), &want_w, 1e-4, "bp w")?;
            expect_close(bufs[7].as_f32(), &want_oldw, 1e-4, "bp oldw")
        }),
    }
}

/// Backprop with the original (Listing 1) kernels — the Table I entry.
pub fn backprop() -> Benchmark {
    Benchmark {
        name: "Backprop",
        origin: "Rodinia",
        source: BACKPROP_ORIGINAL,
        workload: backprop_workload,
    }
}

/// The O1 variable-reuse variant (Listing 2) as its own runnable benchmark.
pub fn backprop_o1() -> Benchmark {
    Benchmark {
        name: "Backprop-O1",
        origin: "Rodinia",
        source: BACKPROP_O1,
        workload: backprop_workload,
    }
}

/// The O2 pipelined-load variant (Listing 3).
pub fn backprop_o2() -> Benchmark {
    Benchmark {
        name: "Backprop-O2",
        origin: "Rodinia",
        source: BACKPROP_O2,
        workload: backprop_workload,
    }
}
