//! Streaming / element-wise benchmarks: Vecadd, Saxpy, Dotproduct, Sfilter,
//! Blackscholes, OCLPrintf.

use crate::runner::{expect_close, expect_eq_i32};
use crate::spec::{Benchmark, HostData, LArg, Launch, Prng, Workload};
use ocl_ir::interp::NdRange;

/// Vecadd (NVIDIA SDK): c = a + b.
pub fn vecadd() -> Benchmark {
    Benchmark {
        name: "Vecadd",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void vecadd(__global const float* a, __global const float* b,
                                 __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }
        "#,
        workload: |scale| {
            let n = scale.pick(256, 16384) as usize;
            let mut rng = Prng::new(11);
            let a: Vec<f32> = (0..n).map(|_| rng.next_f32() * 10.0).collect();
            let b: Vec<f32> = (0..n).map(|_| rng.next_f32() * 10.0).collect();
            let want: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            Workload {
                buffers: vec![
                    HostData::F32(a),
                    HostData::F32(b),
                    HostData::F32(vec![0.0; n]),
                ],
                launches: vec![Launch {
                    kernel: "vecadd",
                    nd: NdRange::d1(n as u32, 16),
                    args: vec![LArg::Buf(0), LArg::Buf(1), LArg::Buf(2)],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[2].as_f32(), &want, 1e-6, "vecadd c")
                }),
            }
        },
    }
}

/// Saxpy (NVIDIA SDK): y = alpha * x + y.
pub fn saxpy() -> Benchmark {
    Benchmark {
        name: "Saxpy",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void saxpy(__global const float* x, __global float* y, float alpha) {
                int i = get_global_id(0);
                y[i] = alpha * x[i] + y[i];
            }
        "#,
        workload: |scale| {
            let n = scale.pick(256, 16384) as usize;
            let alpha = 2.5f32;
            let mut rng = Prng::new(12);
            let x: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
            let y: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
            let want: Vec<f32> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
            Workload {
                buffers: vec![HostData::F32(x), HostData::F32(y)],
                launches: vec![Launch {
                    kernel: "saxpy",
                    nd: NdRange::d1(n as u32, 16),
                    args: vec![LArg::Buf(0), LArg::Buf(1), LArg::F32(alpha)],
                }],
                check: Box::new(move |bufs| expect_close(bufs[1].as_f32(), &want, 1e-5, "saxpy y")),
            }
        },
    }
}

/// Dotproduct (NVIDIA SDK): per-group tree reduction into partial sums.
pub fn dotproduct() -> Benchmark {
    Benchmark {
        name: "Dotproduct",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void dotprod(__global const float* a, __global const float* b,
                                  __global float* partial) {
                __local float tile[16];
                int gid = get_global_id(0);
                int lid = get_local_id(0);
                tile[lid] = a[gid] * b[gid];
                barrier(CLK_LOCAL_MEM_FENCE);
                for (int s = 8; s > 0; s >>= 1) {
                    if (lid < s) tile[lid] += tile[lid + s];
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                if (lid == 0) partial[get_group_id(0)] = tile[0];
            }
        "#,
        workload: |scale| {
            let n = scale.pick(256, 8192) as usize;
            let groups = n / 16;
            let mut rng = Prng::new(13);
            let a: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
            let b: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
            let mut want = vec![0.0f32; groups];
            for g in 0..groups {
                // Sum in the same tree order as the kernel for tight bounds.
                let mut tile: Vec<f32> = (0..16).map(|l| a[g * 16 + l] * b[g * 16 + l]).collect();
                let mut s = 8;
                while s > 0 {
                    for l in 0..s {
                        tile[l] += tile[l + s];
                    }
                    s /= 2;
                }
                want[g] = tile[0];
            }
            Workload {
                buffers: vec![
                    HostData::F32(a),
                    HostData::F32(b),
                    HostData::F32(vec![0.0; groups]),
                ],
                launches: vec![Launch {
                    kernel: "dotprod",
                    nd: NdRange::d1(n as u32, 16),
                    args: vec![LArg::Buf(0), LArg::Buf(1), LArg::Buf(2)],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[2].as_f32(), &want, 1e-6, "dot partials")
                }),
            }
        },
    }
}

/// Sfilter (signal filter, NVIDIA SDK style): 1-D 3-tap smoothing with edge
/// guards (divergent ifs at the boundaries).
pub fn sfilter() -> Benchmark {
    Benchmark {
        name: "Sfilter",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void sfilter(__global const float* in, __global float* out, int n) {
                int i = get_global_id(0);
                float acc = 0.5f * in[i];
                if (i > 0) acc += 0.25f * in[i - 1]; else acc += 0.25f * in[i];
                if (i < n - 1) acc += 0.25f * in[i + 1]; else acc += 0.25f * in[i];
                out[i] = acc;
            }
        "#,
        workload: |scale| {
            let n = scale.pick(256, 16384) as usize;
            let mut rng = Prng::new(14);
            let input: Vec<f32> = (0..n).map(|_| rng.next_f32() * 4.0).collect();
            let want: Vec<f32> = (0..n)
                .map(|i| {
                    let l = if i > 0 { input[i - 1] } else { input[i] };
                    let r = if i < n - 1 { input[i + 1] } else { input[i] };
                    0.5 * input[i] + 0.25 * l + 0.25 * r
                })
                .collect();
            Workload {
                buffers: vec![HostData::F32(input), HostData::F32(vec![0.0; n])],
                launches: vec![Launch {
                    kernel: "sfilter",
                    nd: NdRange::d1(n as u32, 16),
                    args: vec![LArg::Buf(0), LArg::Buf(1), LArg::I32(n as i32)],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[1].as_f32(), &want, 1e-5, "sfilter out")
                }),
            }
        },
    }
}

/// Blackscholes (NVIDIA SDK): European option pricing via the
/// Abramowitz–Stegun normal-CDF polynomial.
pub fn blackscholes() -> Benchmark {
    Benchmark {
        name: "Blackscholes",
        origin: "NVIDIA SDK",
        source: BLACKSCHOLES_SRC,
        workload: |scale| {
            let n = scale.pick(128, 8192) as usize;
            let mut rng = Prng::new(15);
            let price: Vec<f32> = (0..n).map(|_| 10.0 + rng.next_f32() * 90.0).collect();
            let strike: Vec<f32> = (0..n).map(|_| 10.0 + rng.next_f32() * 90.0).collect();
            let years: Vec<f32> = (0..n).map(|_| 0.25 + rng.next_f32() * 2.0).collect();
            let (r, v) = (0.02f32, 0.30f32);
            let mut call = vec![0.0f32; n];
            let mut put = vec![0.0f32; n];
            for i in 0..n {
                let (c, p) = black_scholes_ref(price[i], strike[i], years[i], r, v);
                call[i] = c;
                put[i] = p;
            }
            Workload {
                buffers: vec![
                    HostData::F32(price),
                    HostData::F32(strike),
                    HostData::F32(years),
                    HostData::F32(vec![0.0; n]),
                    HostData::F32(vec![0.0; n]),
                ],
                launches: vec![Launch {
                    kernel: "blackscholes",
                    nd: NdRange::d1(n as u32, 16),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::Buf(3),
                        LArg::Buf(4),
                        LArg::F32(r),
                        LArg::F32(v),
                    ],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[3].as_f32(), &call, 2e-3, "call")?;
                    expect_close(bufs[4].as_f32(), &put, 2e-3, "put")
                }),
            }
        },
    }
}

const BLACKSCHOLES_SRC: &str = r#"
    __kernel void blackscholes(__global const float* price, __global const float* strike,
                               __global const float* years, __global float* call,
                               __global float* put, float r, float v) {
        int i = get_global_id(0);
        float s = price[i];
        float x = strike[i];
        float t = years[i];
        float sqrt_t = sqrt(t);
        float d1 = (log(s / x) + (r + 0.5f * v * v) * t) / (v * sqrt_t);
        float d2 = d1 - v * sqrt_t;
        // Abramowitz-Stegun cumulative normal distribution.
        float k1 = 1.0f / (1.0f + 0.2316419f * fabs(d1));
        float w1 = 1.0f - 0.39894228f * exp(-0.5f * d1 * d1) *
            (k1 * (0.31938153f + k1 * (-0.356563782f + k1 * (1.781477937f +
             k1 * (-1.821255978f + k1 * 1.330274429f)))));
        if (d1 < 0.0f) w1 = 1.0f - w1;
        float k2 = 1.0f / (1.0f + 0.2316419f * fabs(d2));
        float w2 = 1.0f - 0.39894228f * exp(-0.5f * d2 * d2) *
            (k2 * (0.31938153f + k2 * (-0.356563782f + k2 * (1.781477937f +
             k2 * (-1.821255978f + k2 * 1.330274429f)))));
        if (d2 < 0.0f) w2 = 1.0f - w2;
        float e = exp(-r * t);
        call[i] = s * w1 - x * e * w2;
        put[i] = x * e * (1.0f - w2) - s * (1.0f - w1);
    }
"#;

/// Host reference matching the kernel's operation order.
fn black_scholes_ref(s: f32, x: f32, t: f32, r: f32, v: f32) -> (f32, f32) {
    let sqrt_t = t.sqrt();
    let d1 = ((s / x).ln() + (r + 0.5 * v * v) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let cnd = |d: f32| {
        let k = 1.0 / (1.0 + 0.2316419 * d.abs());
        let w = 1.0
            - 0.398_942_3
                * (-0.5 * d * d).exp()
                * (k * (0.31938153
                    + k * (-0.356_563_78
                        + k * (1.781_477_9 + k * (-1.821_255_9 + k * 1.330_274_5)))));
        if d < 0.0 {
            1.0 - w
        } else {
            w
        }
    };
    let (w1, w2) = (cnd(d1), cnd(d2));
    let e = (-r * t).exp();
    (s * w1 - x * e * w2, x * e * (1.0 - w2) - s * (1.0 - w1))
}

/// OCLPrintf (Vortex test suite): device-side printf plus a data result so
/// the harness can verify both paths.
pub fn oclprintf() -> Benchmark {
    Benchmark {
        name: "OCLPrintf",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void oclprintf(__global const int* in, __global int* out) {
                int i = get_global_id(0);
                int v = in[i] * 2 + 1;
                out[i] = v;
                if (i == 0) {
                    printf("oclprintf: first=%d n=%d\n", v, get_global_size(0));
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(64, 1024) as usize;
            let input: Vec<i32> = (0..n as i32).collect();
            let want: Vec<i32> = input.iter().map(|v| v * 2 + 1).collect();
            Workload {
                buffers: vec![HostData::I32(input), HostData::I32(vec![0; n])],
                launches: vec![Launch {
                    kernel: "oclprintf",
                    nd: NdRange::d1(n as u32, 16),
                    args: vec![LArg::Buf(0), LArg::Buf(1)],
                }],
                check: Box::new(move |bufs| expect_eq_i32(bufs[1].as_i32(), &want, "out")),
            }
        },
    }
}
