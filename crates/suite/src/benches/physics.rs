//! Scientific-computing benchmarks: SPMV, Cutcp, Stencil, Lbm, LavaMD.
//!
//! Lbm is a Table I HLS failure: the D2Q5 lattice-Boltzmann step streams
//! five distributions in and out per cell, and those ten computed-index
//! access sites far exceed the MX2100 BRAM budget.

use crate::runner::expect_close;
use crate::spec::{Benchmark, HostData, LArg, Launch, Prng, Workload};
use ocl_ir::interp::NdRange;

/// SPMV (Parboil/SDK style): CSR sparse matrix–vector product.
pub fn spmv() -> Benchmark {
    Benchmark {
        name: "SPMV",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void spmv(__global const int* rowptr, __global const int* colidx,
                               __global const float* vals, __global const float* x,
                               __global float* y, int n) {
                int i = get_global_id(0);
                if (i < n) {
                    float acc = 0.0f;
                    int first = rowptr[i];
                    int last = rowptr[i + 1];
                    for (int k = first; k < last; k++) {
                        acc += vals[k] * x[colidx[k]];
                    }
                    y[i] = acc;
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(96, 2048) as usize;
            let mut rng = Prng::new(41);
            let mut rowptr = vec![0i32; n + 1];
            let mut colidx = Vec::new();
            let mut vals = Vec::new();
            for i in 0..n {
                let nnz = rng.below(6) as usize;
                for _ in 0..nnz {
                    colidx.push(rng.below(n as u32) as i32);
                    vals.push(rng.next_f32() * 2.0 - 1.0);
                }
                rowptr[i + 1] = colidx.len() as i32;
            }
            if colidx.is_empty() {
                colidx.push(0);
                vals.push(0.0);
            }
            let x: Vec<f32> = (0..n).map(|_| rng.next_f32()).collect();
            let want: Vec<f32> = (0..n)
                .map(|i| {
                    (rowptr[i]..rowptr[i + 1])
                        .map(|k| vals[k as usize] * x[colidx[k as usize] as usize])
                        .sum()
                })
                .collect();
            let g = (n as u32).next_multiple_of(16);
            Workload {
                buffers: vec![
                    HostData::I32(rowptr),
                    HostData::I32(colidx),
                    HostData::F32(vals),
                    HostData::F32(x),
                    HostData::F32(vec![0.0; n]),
                ],
                launches: vec![Launch {
                    kernel: "spmv",
                    nd: NdRange::d1(g, 16),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::Buf(3),
                        LArg::Buf(4),
                        LArg::I32(n as i32),
                    ],
                }],
                check: Box::new(move |bufs| expect_close(bufs[4].as_f32(), &want, 1e-4, "spmv y")),
            }
        },
    }
}

/// Cutcp (Parboil): cutoff Coulombic potential on a 1-D grid of points
/// against an atom list.
pub fn cutcp() -> Benchmark {
    Benchmark {
        name: "Cutcp",
        origin: "Rodinia",
        source: r#"
            __kernel void cutcp(__global const float* atom_x, __global const float* atom_q,
                                __global float* grid, int natoms, float spacing,
                                float cutoff2) {
                int i = get_global_id(0);
                float px = (float)i * spacing;
                float acc = 0.0f;
                for (int a = 0; a < natoms; a++) {
                    float dx = atom_x[a] - px;
                    float r2 = dx * dx;
                    if (r2 < cutoff2 && r2 > 0.000001f) {
                        acc += atom_q[a] / sqrt(r2);
                    }
                }
                grid[i] = acc;
            }
        "#,
        workload: |scale| {
            let npoints = scale.pick(128, 4096) as usize;
            let natoms = scale.pick(32, 256) as usize;
            let spacing = 0.25f32;
            let cutoff2 = 4.0f32;
            let mut rng = Prng::new(42);
            let ax: Vec<f32> = (0..natoms)
                .map(|_| rng.next_f32() * npoints as f32 * spacing)
                .collect();
            let aq: Vec<f32> = (0..natoms).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
            let want: Vec<f32> = (0..npoints)
                .map(|i| {
                    let px = i as f32 * spacing;
                    let mut acc = 0.0f32;
                    for a in 0..natoms {
                        let dx = ax[a] - px;
                        let r2 = dx * dx;
                        if r2 < cutoff2 && r2 > 0.000001 {
                            acc += aq[a] / r2.sqrt();
                        }
                    }
                    acc
                })
                .collect();
            Workload {
                buffers: vec![
                    HostData::F32(ax),
                    HostData::F32(aq),
                    HostData::F32(vec![0.0; npoints]),
                ],
                launches: vec![Launch {
                    kernel: "cutcp",
                    nd: NdRange::d1(npoints as u32, 16),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::I32(natoms as i32),
                        LArg::F32(spacing),
                        LArg::F32(cutoff2),
                    ],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[2].as_f32(), &want, 1e-3, "cutcp grid")
                }),
            }
        },
    }
}

/// Stencil (Parboil): 2-D 5-point Jacobi step.
pub fn stencil() -> Benchmark {
    Benchmark {
        name: "Stencil",
        origin: "Rodinia",
        source: r#"
            __kernel void stencil5(__global const float* in, __global float* out,
                                   int w, int h, float c0, float c1) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
                    out[y * w + x] = c0 * in[y * w + x]
                        + c1 * (in[y * w + x - 1] + in[y * w + x + 1]
                              + in[(y - 1) * w + x] + in[(y + 1) * w + x]);
                }
            }
        "#,
        workload: |scale| {
            let w = scale.pick(32, 256) as usize;
            let h = scale.pick(24, 256) as usize;
            let (c0, c1) = (0.5f32, 0.125f32);
            let mut rng = Prng::new(43);
            let input: Vec<f32> = (0..w * h).map(|_| rng.next_f32() * 4.0).collect();
            let mut want = vec![0.0f32; w * h];
            for y in 1..h - 1 {
                for x in 1..w - 1 {
                    want[y * w + x] = c0 * input[y * w + x]
                        + c1 * (input[y * w + x - 1]
                            + input[y * w + x + 1]
                            + input[(y - 1) * w + x]
                            + input[(y + 1) * w + x]);
                }
            }
            Workload {
                buffers: vec![HostData::F32(input), HostData::F32(vec![0.0; w * h])],
                launches: vec![Launch {
                    kernel: "stencil5",
                    nd: NdRange::d2(w as u32, h as u32, 8, 8),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::I32(w as i32),
                        LArg::I32(h as i32),
                        LArg::F32(c0),
                        LArg::F32(c1),
                    ],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[1].as_f32(), &want, 1e-5, "stencil out")
                }),
            }
        },
    }
}

/// Lbm (Parboil/SPEC): one D2Q5 lattice-Boltzmann BGK step — five
/// distributions streamed in and written out per cell.
pub fn lbm() -> Benchmark {
    Benchmark {
        name: "Lbm",
        origin: "Rodinia",
        source: r#"
            __kernel void lbm_step(__global const float* f0, __global const float* f1,
                                   __global const float* f2, __global const float* f3,
                                   __global const float* f4, __global float* g0,
                                   __global float* g1, __global float* g2,
                                   __global float* g3, __global float* g4,
                                   int w, int h, float omega) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int idx = y * w + x;
                // Pull streaming with periodic wrap.
                int xm = (x + w - 1) % w;
                int xp = (x + 1) % w;
                int ym = (y + h - 1) % h;
                int yp = (y + 1) % h;
                float c = f0[idx];
                float e = f1[y * w + xm];
                float wv = f2[y * w + xp];
                float n = f3[ym * w + x];
                float s = f4[yp * w + x];
                float rho = c + e + wv + n + s;
                float ux = (e - wv) / rho;
                float uy = (n - s) / rho;
                float usq = 1.5f * (ux * ux + uy * uy);
                float feq0 = rho * 0.333333f * (1.0f - usq);
                float feq1 = rho * 0.166667f * (1.0f + 3.0f * ux + 4.5f * ux * ux - usq);
                float feq2 = rho * 0.166667f * (1.0f - 3.0f * ux + 4.5f * ux * ux - usq);
                float feq3 = rho * 0.166667f * (1.0f + 3.0f * uy + 4.5f * uy * uy - usq);
                float feq4 = rho * 0.166667f * (1.0f - 3.0f * uy + 4.5f * uy * uy - usq);
                g0[idx] = c + omega * (feq0 - c);
                g1[idx] = e + omega * (feq1 - e);
                g2[idx] = wv + omega * (feq2 - wv);
                g3[idx] = n + omega * (feq3 - n);
                g4[idx] = s + omega * (feq4 - s);
            }
        "#,
        workload: |scale| {
            let w = scale.pick(16, 64) as usize;
            let h = scale.pick(16, 64) as usize;
            let omega = 0.8f32;
            let mut rng = Prng::new(44);
            let fs: Vec<Vec<f32>> = (0..5)
                .map(|_| (0..w * h).map(|_| 0.1 + rng.next_f32() * 0.1).collect())
                .collect();
            // Reference step.
            let mut want: Vec<Vec<f32>> = vec![vec![0.0; w * h]; 5];
            for y in 0..h {
                for x in 0..w {
                    let idx = y * w + x;
                    let xm = (x + w - 1) % w;
                    let xp = (x + 1) % w;
                    let ym = (y + h - 1) % h;
                    let yp = (y + 1) % h;
                    let c = fs[0][idx];
                    let e = fs[1][y * w + xm];
                    let wv = fs[2][y * w + xp];
                    let n = fs[3][ym * w + x];
                    let s = fs[4][yp * w + x];
                    let rho = c + e + wv + n + s;
                    let ux = (e - wv) / rho;
                    let uy = (n - s) / rho;
                    let usq = 1.5 * (ux * ux + uy * uy);
                    let feq = [
                        rho * 0.333333 * (1.0 - usq),
                        rho * 0.166667 * (1.0 + 3.0 * ux + 4.5 * ux * ux - usq),
                        rho * 0.166667 * (1.0 - 3.0 * ux + 4.5 * ux * ux - usq),
                        rho * 0.166667 * (1.0 + 3.0 * uy + 4.5 * uy * uy - usq),
                        rho * 0.166667 * (1.0 - 3.0 * uy + 4.5 * uy * uy - usq),
                    ];
                    let f = [c, e, wv, n, s];
                    for d in 0..5 {
                        want[d][idx] = f[d] + omega * (feq[d] - f[d]);
                    }
                }
            }
            let mut buffers: Vec<HostData> = fs.into_iter().map(HostData::F32).collect();
            for _ in 0..5 {
                buffers.push(HostData::F32(vec![0.0; w * h]));
            }
            Workload {
                buffers,
                launches: vec![Launch {
                    kernel: "lbm_step",
                    nd: NdRange::d2(w as u32, h as u32, 8, 8),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::Buf(3),
                        LArg::Buf(4),
                        LArg::Buf(5),
                        LArg::Buf(6),
                        LArg::Buf(7),
                        LArg::Buf(8),
                        LArg::Buf(9),
                        LArg::I32(w as i32),
                        LArg::I32(h as i32),
                        LArg::F32(omega),
                    ],
                }],
                check: Box::new(move |bufs| {
                    for d in 0..5 {
                        expect_close(bufs[5 + d].as_f32(), &want[d], 1e-4, &format!("lbm g{d}"))?;
                    }
                    Ok(())
                }),
            }
        },
    }
}

/// LavaMD (Rodinia): particle forces within a neighborhood window.
pub fn lavamd() -> Benchmark {
    Benchmark {
        name: "LavaMD",
        origin: "Rodinia",
        source: r#"
            __kernel void lavamd(__global const float* pos, __global const float* charge,
                                 __global float* force, int n, int window, float a2) {
                int i = get_global_id(0);
                if (i < n) {
                    float xi = pos[i];
                    float acc = 0.0f;
                    int first = i - window;
                    if (first < 0) first = 0;
                    int last = i + window;
                    if (last > n - 1) last = n - 1;
                    for (int j = first; j <= last; j++) {
                        float dx = xi - pos[j];
                        float r2 = dx * dx + a2;
                        float inv = 1.0f / sqrt(r2);
                        acc += charge[j] * inv * inv * inv * dx;
                    }
                    force[i] = acc;
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(96, 2048) as usize;
            let window = 8i32;
            let a2 = 0.01f32;
            let mut rng = Prng::new(45);
            let pos: Vec<f32> = (0..n)
                .map(|i| i as f32 * 0.3 + rng.next_f32() * 0.1)
                .collect();
            let charge: Vec<f32> = (0..n).map(|_| rng.next_f32() * 2.0 - 1.0).collect();
            let want: Vec<f32> = (0..n)
                .map(|i| {
                    let first = (i as i32 - window).max(0) as usize;
                    let last = (i as i32 + window).min(n as i32 - 1) as usize;
                    let mut acc = 0.0f32;
                    for j in first..=last {
                        let dx = pos[i] - pos[j];
                        let r2 = dx * dx + a2;
                        let inv = 1.0 / r2.sqrt();
                        acc += charge[j] * inv * inv * inv * dx;
                    }
                    acc
                })
                .collect();
            let g = (n as u32).next_multiple_of(16);
            Workload {
                buffers: vec![
                    HostData::F32(pos),
                    HostData::F32(charge),
                    HostData::F32(vec![0.0; n]),
                ],
                launches: vec![Launch {
                    kernel: "lavamd",
                    nd: NdRange::d1(g, 16),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::I32(n as i32),
                        LArg::I32(window),
                        LArg::F32(a2),
                    ],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[2].as_f32(), &want, 1e-3, "lavamd force")
                }),
            }
        },
    }
}
