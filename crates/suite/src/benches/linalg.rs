//! Dense linear algebra: Sgemm, Matmul, Transpose, Gaussian, NW, LUD.
//!
//! LUD is one of the six Table I HLS failures: its three kernels carry
//! enough computed-index access sites to exceed the MX2100's 6,847 M20K
//! budget; Gaussian is structured to sit just *below* it, matching the
//! paper's 6,384-BRAM report.

use crate::runner::expect_close;
use crate::spec::{Benchmark, HostData, LArg, Launch, Prng, Workload};
use ocl_ir::interp::NdRange;

fn random_matrix(rng: &mut Prng, n: usize, scale: f32) -> Vec<f32> {
    (0..n).map(|_| (rng.next_f32() - 0.5) * scale).collect()
}

/// Sgemm (NVIDIA SDK): C = alpha*A*B + beta*C.
pub fn sgemm() -> Benchmark {
    Benchmark {
        name: "Sgemm",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void sgemm(__global const float* a, __global const float* b,
                                __global float* c, int n, float alpha, float beta) {
                int col = get_global_id(0);
                int row = get_global_id(1);
                float acc = 0.0f;
                for (int k = 0; k < n; k++) {
                    acc += a[row * n + k] * b[k * n + col];
                }
                c[row * n + col] = alpha * acc + beta * c[row * n + col];
            }
        "#,
        workload: |scale| {
            let n = scale.pick(16, 64) as usize;
            let (alpha, beta) = (1.5f32, 0.5f32);
            let mut rng = Prng::new(21);
            let a = random_matrix(&mut rng, n * n, 2.0);
            let b = random_matrix(&mut rng, n * n, 2.0);
            let c0 = random_matrix(&mut rng, n * n, 2.0);
            let mut want = vec![0.0f32; n * n];
            for r in 0..n {
                for cc in 0..n {
                    let mut acc = 0.0f32;
                    for k in 0..n {
                        acc += a[r * n + k] * b[k * n + cc];
                    }
                    want[r * n + cc] = alpha * acc + beta * c0[r * n + cc];
                }
            }
            Workload {
                buffers: vec![HostData::F32(a), HostData::F32(b), HostData::F32(c0)],
                launches: vec![Launch {
                    kernel: "sgemm",
                    nd: NdRange::d2(n as u32, n as u32, 8, 8),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::I32(n as i32),
                        LArg::F32(alpha),
                        LArg::F32(beta),
                    ],
                }],
                check: Box::new(move |bufs| expect_close(bufs[2].as_f32(), &want, 1e-3, "sgemm C")),
            }
        },
    }
}

/// Matmul (NVIDIA SDK): naive C = A*B.
pub fn matmul() -> Benchmark {
    Benchmark {
        name: "Matmul",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void matmul(__global const float* a, __global const float* b,
                                 __global float* c, int n) {
                int col = get_global_id(0);
                int row = get_global_id(1);
                float acc = 0.0f;
                for (int k = 0; k < n; k++) {
                    acc += a[row * n + k] * b[k * n + col];
                }
                c[row * n + col] = acc;
            }
        "#,
        workload: |scale| {
            let n = scale.pick(16, 64) as usize;
            let mut rng = Prng::new(22);
            let a = random_matrix(&mut rng, n * n, 2.0);
            let b = random_matrix(&mut rng, n * n, 2.0);
            let mut want = vec![0.0f32; n * n];
            for r in 0..n {
                for cc in 0..n {
                    want[r * n + cc] = (0..n).map(|k| a[r * n + k] * b[k * n + cc]).sum();
                }
            }
            Workload {
                buffers: vec![
                    HostData::F32(a),
                    HostData::F32(b),
                    HostData::F32(vec![0.0; n * n]),
                ],
                launches: vec![Launch {
                    kernel: "matmul",
                    nd: NdRange::d2(n as u32, n as u32, 8, 8),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::I32(n as i32),
                    ],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[2].as_f32(), &want, 1e-3, "matmul C")
                }),
            }
        },
    }
}

/// Transpose (NVIDIA SDK): `out[x][y] = in[y][x]`; the second Figure 7
/// benchmark (strided writes → latency-bound on Vortex).
pub fn transpose() -> Benchmark {
    Benchmark {
        name: "Transpose",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void transpose(__global const float* in, __global float* out,
                                    int width, int height) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                out[x * height + y] = in[y * width + x];
            }
        "#,
        workload: |scale| {
            let w = scale.pick(32, 256) as usize;
            let h = scale.pick(16, 256) as usize;
            let mut rng = Prng::new(23);
            let input = random_matrix(&mut rng, w * h, 8.0);
            let mut want = vec![0.0f32; w * h];
            for y in 0..h {
                for x in 0..w {
                    want[x * h + y] = input[y * w + x];
                }
            }
            Workload {
                buffers: vec![HostData::F32(input), HostData::F32(vec![0.0; w * h])],
                launches: vec![Launch {
                    kernel: "transpose",
                    nd: NdRange::d2(w as u32, h as u32, 8, 8),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::I32(w as i32),
                        LArg::I32(h as i32),
                    ],
                }],
                check: Box::new(move |bufs| {
                    expect_close(bufs[1].as_f32(), &want, 0.0, "transpose out")
                }),
            }
        },
    }
}

/// Gaussian (Rodinia): elimination via the Fan1/Fan2 kernel pair, one
/// launch pair per pivot step.
pub fn gaussian() -> Benchmark {
    Benchmark {
        name: "Gaussian",
        origin: "Rodinia",
        source: r#"
            __kernel void fan1(__global const float* a, __global float* m,
                               __global float* b, int n, int t) {
                int i = get_global_id(0);
                if (i < n - 1 - t) {
                    float mult = a[(i + t + 1) * n + t] / a[t * n + t];
                    m[(i + t + 1) * n + t] = mult;
                    b[i + t + 1] -= mult * b[t];
                }
            }
            __kernel void fan2(__global float* a, __global const float* m, int n, int t) {
                int j = get_global_id(0);
                int i = get_global_id(1);
                if (i < n - 1 - t && j < n - t) {
                    float mult = m[(i + 1 + t) * n + t];
                    a[(i + 1 + t) * n + (j + t)] -= mult * a[t * n + (j + t)];
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(16, 64) as usize;
            let mut rng = Prng::new(24);
            // Diagonally dominant so elimination is stable without pivoting.
            let mut a = random_matrix(&mut rng, n * n, 1.0);
            for i in 0..n {
                a[i * n + i] += n as f32;
            }
            let b: Vec<f32> = (0..n).map(|_| rng.next_f32() * 4.0).collect();
            // Reference elimination, same update order.
            let mut ra = a.clone();
            let mut rb = b.clone();
            for t in 0..n - 1 {
                for i in t + 1..n {
                    let mult = ra[i * n + t] / ra[t * n + t];
                    for j in t..n {
                        ra[i * n + j] -= mult * ra[t * n + j];
                    }
                    rb[i] -= mult * rb[t];
                }
            }
            let mut launches = Vec::new();
            let sz = n as u32;
            for t in 0..(n - 1) as i32 {
                launches.push(Launch {
                    kernel: "fan1",
                    nd: NdRange::d1(sz, sz.min(16)),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(2),
                        LArg::Buf(1),
                        LArg::I32(n as i32),
                        LArg::I32(t),
                    ],
                });
                launches.push(Launch {
                    kernel: "fan2",
                    nd: NdRange::d2(sz, sz, sz.min(8), sz.min(8)),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(2),
                        LArg::I32(n as i32),
                        LArg::I32(t),
                    ],
                });
            }
            // Fan2 updates columns j >= t including the multiplier column;
            // the reference zeroes it exactly, the kernel leaves residue in
            // column t below the diagonal like Rodinia does, so compare only
            // the upper triangle plus b.
            let nn = n;
            Workload {
                buffers: vec![
                    HostData::F32(a),
                    HostData::F32(b),
                    HostData::F32(vec![0.0; n * n]),
                ],
                launches,
                check: Box::new(move |bufs| {
                    let got = bufs[0].as_f32();
                    for i in 0..nn {
                        for j in i..nn {
                            let g = got[i * nn + j];
                            let w = ra[i * nn + j];
                            if (g - w).abs() > 1e-2 * w.abs().max(1.0) {
                                return Err(format!("gaussian a[{i}][{j}]: got {g}, want {w}"));
                            }
                        }
                    }
                    expect_close(bufs[1].as_f32(), &rb, 1e-2, "gaussian b")
                }),
            }
        },
    }
}

/// NW (Rodinia, Needleman–Wunsch): anti-diagonal DP over the similarity
/// matrix, one launch per diagonal.
pub fn nw() -> Benchmark {
    Benchmark {
        name: "nw",
        origin: "Rodinia",
        source: r#"
            __kernel void nw_diag(__global int* score, __global const int* ref,
                                  int n, int d, int penalty) {
                int k = get_global_id(0);
                int i = k + 1;
                int j = d - k + 1;
                if (j >= 1 && j <= n - 2 && i <= n - 2 && i >= 1) {
                    int up = score[(i - 1) * n + j] - penalty;
                    int left = score[i * n + (j - 1)] - penalty;
                    int diag = score[(i - 1) * n + (j - 1)] + ref[i * n + j];
                    int best = up;
                    if (left > best) best = left;
                    if (diag > best) best = diag;
                    score[i * n + j] = best;
                }
            }
        "#,
        workload: |scale| {
            // n includes the boundary row/column like Rodinia's max_rows+1.
            let n = scale.pick(18, 66) as usize;
            let penalty = 10i32;
            let mut rng = Prng::new(25);
            let mut reference = vec![0i32; n * n];
            for v in reference.iter_mut() {
                *v = (rng.below(21) as i32) - 10;
            }
            let mut score = vec![0i32; n * n];
            for i in 0..n {
                score[i * n] = -(i as i32) * penalty;
                score[i] = -(i as i32) * penalty;
            }
            // Reference DP.
            let mut want = score.clone();
            for i in 1..n - 1 {
                for j in 1..n - 1 {
                    let up = want[(i - 1) * n + j] - penalty;
                    let left = want[i * n + (j - 1)] - penalty;
                    let diag = want[(i - 1) * n + (j - 1)] + reference[i * n + j];
                    want[i * n + j] = up.max(left).max(diag);
                }
            }
            let interior = (n - 2) as u32;
            let mut launches = Vec::new();
            for d in 0..(2 * (n - 2) - 1) as i32 {
                launches.push(Launch {
                    kernel: "nw_diag",
                    nd: NdRange::d1(interior.next_multiple_of(8), 8),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::I32(n as i32),
                        LArg::I32(d),
                        LArg::I32(penalty),
                    ],
                });
            }
            let nn = n;
            Workload {
                buffers: vec![HostData::I32(score), HostData::I32(reference)],
                launches,
                check: Box::new(move |bufs| {
                    let got = bufs[0].as_i32();
                    for i in 1..nn - 1 {
                        for j in 1..nn - 1 {
                            if got[i * nn + j] != want[i * nn + j] {
                                return Err(format!(
                                    "nw score[{i}][{j}]: got {}, want {}",
                                    got[i * nn + j],
                                    want[i * nn + j]
                                ));
                            }
                        }
                    }
                    Ok(())
                }),
            }
        },
    }
}

/// LUD (Rodinia): blocked LU decomposition as a pivot/update kernel pair
/// (plus a trailing-submatrix kernel). One of the Table I BRAM failures on
/// the HLS flow.
pub fn lud() -> Benchmark {
    Benchmark {
        name: "LUD",
        origin: "Rodinia",
        source: r#"
            __kernel void lud_diagonal(__global float* a, int n, int t) {
                int i = get_global_id(0);
                if (i > t && i < n) {
                    a[i * n + t] = a[i * n + t] / a[t * n + t];
                }
            }
            __kernel void lud_perimeter(__global float* a, __global float* row_cache,
                                        __global float* col_cache, int n, int t) {
                int j = get_global_id(0);
                if (j > t && j < n) {
                    row_cache[j] = a[t * n + j];
                    col_cache[j] = a[j * n + t];
                }
            }
            __kernel void lud_internal(__global float* a, __global const float* row_cache,
                                       __global const float* col_cache, int n, int t) {
                int j = get_global_id(0);
                int i = get_global_id(1);
                if (i > t && i < n && j > t && j < n) {
                    a[i * n + j] = a[i * n + j] - col_cache[i] * row_cache[j];
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(12, 48) as usize;
            let mut rng = Prng::new(26);
            let mut a = random_matrix(&mut rng, n * n, 1.0);
            for i in 0..n {
                a[i * n + i] += n as f32 + 2.0;
            }
            // Reference in-place Doolittle LU (same update order).
            let mut want = a.clone();
            for t in 0..n - 1 {
                for i in t + 1..n {
                    want[i * n + t] /= want[t * n + t];
                }
                for i in t + 1..n {
                    for j in t + 1..n {
                        want[i * n + j] -= want[i * n + t] * want[t * n + j];
                    }
                }
            }
            let sz = n as u32;
            let mut launches = Vec::new();
            for t in 0..(n - 1) as i32 {
                launches.push(Launch {
                    kernel: "lud_diagonal",
                    nd: NdRange::d1(sz.next_multiple_of(8), 8),
                    args: vec![LArg::Buf(0), LArg::I32(n as i32), LArg::I32(t)],
                });
                launches.push(Launch {
                    kernel: "lud_perimeter",
                    nd: NdRange::d1(sz.next_multiple_of(8), 8),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::I32(n as i32),
                        LArg::I32(t),
                    ],
                });
                launches.push(Launch {
                    kernel: "lud_internal",
                    nd: NdRange::d2(sz.next_multiple_of(8), sz.next_multiple_of(8), 8, 8),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::I32(n as i32),
                        LArg::I32(t),
                    ],
                });
            }
            Workload {
                buffers: vec![
                    HostData::F32(a),
                    HostData::F32(vec![0.0; n]),
                    HostData::F32(vec![0.0; n]),
                ],
                launches,
                check: Box::new(move |bufs| expect_close(bufs[0].as_f32(), &want, 5e-2, "lud a")),
            }
        },
    }
}
