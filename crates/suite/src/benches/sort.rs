//! Sorting benchmarks: Psort (odd-even transposition) and Hybridsort
//! (histogram bucketing with atomics — the Table I "Atomics" HLS failure).

use crate::runner::expect_eq_i32;
use crate::spec::{Benchmark, HostData, LArg, Launch, Prng, Workload};
use ocl_ir::interp::NdRange;

/// Psort (parallel sort, NVIDIA SDK style): odd-even transposition network,
/// one launch per phase.
pub fn psort() -> Benchmark {
    Benchmark {
        name: "Psort",
        origin: "NVIDIA SDK",
        source: r#"
            __kernel void psort_phase(__global int* data, int n, int phase) {
                int i = get_global_id(0);
                int idx = 2 * i + (phase & 1);
                if (idx + 1 < n) {
                    int a = data[idx];
                    int b = data[idx + 1];
                    if (a > b) {
                        data[idx] = b;
                        data[idx + 1] = a;
                    }
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(64, 512) as usize;
            let mut rng = Prng::new(61);
            let data: Vec<i32> = (0..n).map(|_| rng.below(10_000) as i32).collect();
            let mut want = data.clone();
            want.sort_unstable();
            let half = (n as u32 / 2).next_multiple_of(16);
            let launches = (0..n)
                .map(|phase| Launch {
                    kernel: "psort_phase",
                    nd: NdRange::d1(half, 16),
                    args: vec![LArg::Buf(0), LArg::I32(n as i32), LArg::I32(phase as i32)],
                })
                .collect();
            Workload {
                buffers: vec![HostData::I32(data)],
                launches,
                check: Box::new(move |bufs| expect_eq_i32(bufs[0].as_i32(), &want, "psort")),
            }
        },
    }
}

/// Hybridsort (Rodinia): the bucketing stage — a histogram kernel using
/// `atomic_add` (what fails HLS synthesis on the MX2100) followed by a
/// scatter using per-element atomic slot allocation.
pub fn hybridsort() -> Benchmark {
    Benchmark {
        name: "Hybridsort",
        origin: "Rodinia",
        source: r#"
            __kernel void histogram1024(__global const int* data, __global int* histo,
                                        int n, int shift) {
                int i = get_global_id(0);
                if (i < n) {
                    int bucket = data[i] >> shift;
                    atomic_add(&histo[bucket], 1);
                }
            }
            __kernel void bucket_scatter(__global const int* data, __global int* offsets,
                                         __global int* out, int n, int shift) {
                int i = get_global_id(0);
                if (i < n) {
                    int v = data[i];
                    int bucket = v >> shift;
                    int slot = atomic_add(&offsets[bucket], 1);
                    out[slot] = v;
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(128, 2048) as usize;
            let buckets = 16usize;
            let shift = 6i32; // values 0..1024 -> 16 buckets of 64
            let mut rng = Prng::new(62);
            let data: Vec<i32> = (0..n).map(|_| rng.below(1024) as i32).collect();
            let mut want_histo = vec![0i32; buckets];
            for &v in &data {
                want_histo[(v >> shift) as usize] += 1;
            }
            // Scatter offsets: exclusive prefix sums of the histogram (the
            // host-side step of hybridsort).
            let mut offsets = vec![0i32; buckets];
            let mut acc = 0;
            for b in 0..buckets {
                offsets[b] = acc;
                acc += want_histo[b];
            }
            // The scatter is order-nondeterministic within a bucket, so the
            // check sorts each bucket range (bucket membership is what the
            // kernel guarantees).
            let bucket_of = move |v: i32| (v >> shift) as usize;
            let want_counts = want_histo.clone();
            let g = (n as u32).next_multiple_of(16);
            Workload {
                buffers: vec![
                    HostData::I32(data),
                    HostData::I32(vec![0; buckets]),
                    HostData::I32(offsets),
                    HostData::I32(vec![-1; n]),
                ],
                launches: vec![
                    Launch {
                        kernel: "histogram1024",
                        nd: NdRange::d1(g, 16),
                        args: vec![
                            LArg::Buf(0),
                            LArg::Buf(1),
                            LArg::I32(n as i32),
                            LArg::I32(shift),
                        ],
                    },
                    Launch {
                        kernel: "bucket_scatter",
                        nd: NdRange::d1(g, 16),
                        args: vec![
                            LArg::Buf(0),
                            LArg::Buf(2),
                            LArg::Buf(3),
                            LArg::I32(n as i32),
                            LArg::I32(shift),
                        ],
                    },
                ],
                check: Box::new(move |bufs| {
                    expect_eq_i32(bufs[1].as_i32(), &want_histo, "histogram")?;
                    let out = bufs[3].as_i32();
                    let mut start = 0usize;
                    for (b, &cnt) in want_counts.iter().enumerate() {
                        for &v in &out[start..start + cnt as usize] {
                            if bucket_of(v) != b {
                                return Err(format!("scatter: value {v} landed in bucket {b}"));
                            }
                        }
                        start += cnt as usize;
                    }
                    Ok(())
                }),
            }
        },
    }
}
