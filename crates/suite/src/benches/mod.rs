//! The 28 benchmark definitions, grouped by domain.

pub mod graph;
pub mod linalg;
pub mod misc;
pub mod ml;
pub mod physics;
pub mod simple;
pub mod sort;
