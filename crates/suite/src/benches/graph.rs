//! Graph benchmarks: BFS and B+tree.
//!
//! B+tree is a Table I HLS failure: its two lookup kernels traverse
//! pointer-chased node arrays, and the resulting indirect access sites
//! exceed the MX2100 BRAM budget. BFS sits below the budget (the paper
//! reports 5,892 BRAMs).

use crate::runner::expect_eq_i32;
use crate::spec::{Benchmark, HostData, LArg, Launch, Prng, Workload};
use ocl_ir::interp::NdRange;

/// BFS (Rodinia): frontier-based level expansion, one launch pair per level.
pub fn bfs() -> Benchmark {
    Benchmark {
        name: "BFS",
        origin: "Rodinia",
        source: r#"
            __kernel void bfs_expand(__global const int* starts, __global const int* counts,
                                     __global const int* edges, __global int* cost,
                                     __global int* mask, __global int* next_mask,
                                     __global int* done, int n) {
                int i = get_global_id(0);
                if (i < n) {
                    if (mask[i] != 0) {
                        mask[i] = 0;
                        int first = starts[i];
                        int cnt = counts[i];
                        for (int e = 0; e < cnt; e++) {
                            int id = edges[first + e];
                            if (cost[id] < 0) {
                                cost[id] = cost[i] + 1;
                                next_mask[id] = 1;
                                done[0] = 0;
                            }
                        }
                    }
                }
            }
            __kernel void bfs_swap(__global int* mask, __global int* next_mask, int n) {
                int i = get_global_id(0);
                if (i < n) {
                    mask[i] = next_mask[i];
                    next_mask[i] = 0;
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(64, 1024) as usize;
            let mut rng = Prng::new(31);
            // Random sparse digraph with bounded out-degree.
            let mut starts = Vec::with_capacity(n);
            let mut counts = Vec::with_capacity(n);
            let mut edges = Vec::new();
            for i in 0..n {
                starts.push(edges.len() as i32);
                let deg = rng.below(4) as usize;
                counts.push(deg as i32);
                for _ in 0..deg {
                    edges.push(rng.below(n as u32) as i32);
                }
                let _ = i;
            }
            if edges.is_empty() {
                edges.push(0);
            }
            // Reference BFS from node 0.
            let mut want = vec![-1i32; n];
            want[0] = 0;
            let mut frontier = vec![0usize];
            while let Some(next) = {
                let mut nf = Vec::new();
                for &u in &frontier {
                    let s = starts[u] as usize;
                    for e in 0..counts[u] as usize {
                        let v = edges[s + e] as usize;
                        if want[v] < 0 {
                            want[v] = want[u] + 1;
                            nf.push(v);
                        }
                    }
                }
                if nf.is_empty() {
                    None
                } else {
                    Some(nf)
                }
            } {
                frontier = next;
            }
            let mut cost = vec![-1i32; n];
            cost[0] = 0;
            let mut mask = vec![0i32; n];
            mask[0] = 1;
            // Upper bound on levels = n; the done flag is informational (the
            // host in Rodinia polls it; our fixed schedule just runs enough
            // levels).
            let levels = n.clamp(4, 40);
            let mut launches = Vec::new();
            let g = (n as u32).next_multiple_of(16);
            for _ in 0..levels {
                launches.push(Launch {
                    kernel: "bfs_expand",
                    nd: NdRange::d1(g, 16),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(1),
                        LArg::Buf(2),
                        LArg::Buf(3),
                        LArg::Buf(4),
                        LArg::Buf(5),
                        LArg::Buf(6),
                        LArg::I32(n as i32),
                    ],
                });
                launches.push(Launch {
                    kernel: "bfs_swap",
                    nd: NdRange::d1(g, 16),
                    args: vec![LArg::Buf(4), LArg::Buf(5), LArg::I32(n as i32)],
                });
            }
            Workload {
                buffers: vec![
                    HostData::I32(starts),
                    HostData::I32(counts),
                    HostData::I32(edges),
                    HostData::I32(cost),
                    HostData::I32(mask),
                    HostData::I32(vec![0; n]),
                    HostData::I32(vec![1]),
                ],
                launches,
                check: Box::new(move |bufs| expect_eq_i32(bufs[3].as_i32(), &want, "bfs cost")),
            }
        },
    }
}

/// B+tree (Rodinia): point lookups (findK) and range counts (findRangeK)
/// over an implicit B+tree laid out in arrays.
pub fn btree() -> Benchmark {
    Benchmark {
        name: "B+tree",
        origin: "Rodinia",
        source: r#"
            __kernel void find_k(__global const int* keys, __global const int* children,
                                 __global const int* leaf_vals, __global const int* queries,
                                 __global int* out, int order, int depth) {
                int q = get_global_id(0);
                int target = queries[q];
                int node = 0;
                for (int level = 0; level < depth; level++) {
                    int slot = 0;
                    for (int k = 0; k < order - 1; k++) {
                        if (target >= keys[node * (order - 1) + k]) slot = k + 1;
                    }
                    node = children[node * order + slot];
                }
                out[q] = leaf_vals[node];
            }
            __kernel void find_range_k(__global const int* keys, __global const int* children,
                                       __global const int* leaf_vals, __global const int* queries,
                                       __global int* out, int order, int depth, int span) {
                int q = get_global_id(0);
                int lo = queries[q];
                int hi = lo + span;
                int node = 0;
                for (int level = 0; level < depth; level++) {
                    int slot = 0;
                    for (int k = 0; k < order - 1; k++) {
                        if (lo >= keys[node * (order - 1) + k]) slot = k + 1;
                    }
                    node = children[node * order + slot];
                }
                int acc = 0;
                int v = leaf_vals[node];
                if (v >= lo && v < hi) acc = 1;
                out[q] = acc;
            }
        "#,
        workload: |scale| {
            let order = 4usize; // children per node
            let depth = scale.pick(3, 5) as usize;
            let queries_n = scale.pick(32, 512) as usize;
            // Build a complete tree: internal nodes at levels 0..depth,
            // leaves hold value = leaf index * 10.
            let internal: usize = (0..depth).map(|l| order.pow(l as u32)).sum();
            let leaves = order.pow(depth as u32);
            let total = internal + leaves;
            let mut keys = vec![0i32; total * (order - 1)];
            let mut children = vec![0i32; total * order];
            // Leaf i covers [i*10, (i+1)*10); build separators bottom-up.
            // Node numbering: BFS order (root 0).
            let mut first_of_level = vec![0usize; depth + 1];
            for l in 1..=depth {
                first_of_level[l] = first_of_level[l - 1] + order.pow((l - 1) as u32);
            }
            for l in 0..depth {
                let count = order.pow(l as u32);
                for idx in 0..count {
                    let node = first_of_level[l] + idx;
                    // Children are the next level's nodes.
                    let child_base = first_of_level[l + 1] + idx * order;
                    // Each subtree under child c spans leaves of width:
                    let width = order.pow((depth - l - 1) as u32) * 10;
                    let subtree_first_leaf = idx * order.pow((depth - l) as u32) * 10;
                    for c in 0..order {
                        children[node * order + c] = (child_base + c) as i32;
                    }
                    for k in 0..order - 1 {
                        keys[node * (order - 1) + k] =
                            (subtree_first_leaf + (k + 1) * width) as i32;
                    }
                }
            }
            let leaf_vals: Vec<i32> = (0..total)
                .map(|i| {
                    if i >= internal {
                        ((i - internal) * 10) as i32
                    } else {
                        0
                    }
                })
                .collect();
            let mut rng = Prng::new(32);
            let queries: Vec<i32> = (0..queries_n)
                .map(|_| rng.below((leaves * 10) as u32) as i32)
                .collect();
            // Reference: the leaf covering q has value (q/10)*10.
            let want_find: Vec<i32> = queries.iter().map(|q| (q / 10) * 10).collect();
            let span = 7;
            let want_range: Vec<i32> = queries
                .iter()
                .map(|q| {
                    let v = (q / 10) * 10;
                    i32::from(v >= *q && v < *q + span)
                })
                .collect();
            let g = (queries_n as u32).next_multiple_of(16);
            Workload {
                buffers: vec![
                    HostData::I32(keys),
                    HostData::I32(children),
                    HostData::I32(leaf_vals),
                    HostData::I32(queries),
                    HostData::I32(vec![0; queries_n]),
                    HostData::I32(vec![0; queries_n]),
                ],
                launches: vec![
                    Launch {
                        kernel: "find_k",
                        nd: NdRange::d1(g, 16),
                        args: vec![
                            LArg::Buf(0),
                            LArg::Buf(1),
                            LArg::Buf(2),
                            LArg::Buf(3),
                            LArg::Buf(4),
                            LArg::I32(order as i32),
                            LArg::I32(depth as i32),
                        ],
                    },
                    Launch {
                        kernel: "find_range_k",
                        nd: NdRange::d1(g, 16),
                        args: vec![
                            LArg::Buf(0),
                            LArg::Buf(1),
                            LArg::Buf(2),
                            LArg::Buf(3),
                            LArg::Buf(5),
                            LArg::I32(order as i32),
                            LArg::I32(depth as i32),
                            LArg::I32(span),
                        ],
                    },
                ],
                check: Box::new(move |bufs| {
                    expect_eq_i32(&bufs[4].as_i32()[..want_find.len()], &want_find, "find_k")?;
                    expect_eq_i32(
                        &bufs[5].as_i32()[..want_range.len()],
                        &want_range,
                        "find_range_k",
                    )
                }),
            }
        },
    }
}
