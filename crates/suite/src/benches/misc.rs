//! Remaining Rodinia benchmarks: Pathfinder, Particlefilter, Dwt2d.
//!
//! Dwt2d is a Table I HLS failure: the two 4-tap CDF-style wavelet kernels
//! (rows then columns) carry eight computed-index loads plus four computed
//! stores, exceeding the MX2100 BRAM budget.

use crate::runner::{expect_close, expect_eq_i32};
use crate::spec::{Benchmark, HostData, LArg, Launch, Prng, Workload};
use ocl_ir::interp::NdRange;

/// Pathfinder (Rodinia): row-by-row dynamic programming over a cost grid.
pub fn pathfinder() -> Benchmark {
    Benchmark {
        name: "pathfinder",
        origin: "Rodinia",
        source: r#"
            __kernel void pathfinder_row(__global const int* wall, __global const int* src,
                                         __global int* dst, int cols, int row) {
                int i = get_global_id(0);
                if (i < cols) {
                    int best = src[i];
                    if (i > 0 && src[i - 1] < best) best = src[i - 1];
                    if (i < cols - 1 && src[i + 1] < best) best = src[i + 1];
                    dst[i] = wall[row * cols + i] + best;
                }
            }
        "#,
        workload: |scale| {
            let cols = scale.pick(64, 1024) as usize;
            let rows = scale.pick(8, 64) as usize;
            let mut rng = Prng::new(71);
            let wall: Vec<i32> = (0..rows * cols).map(|_| rng.below(10) as i32).collect();
            // Reference DP.
            let mut cur: Vec<i32> = wall[..cols].to_vec();
            for r in 1..rows {
                let prev = cur.clone();
                for i in 0..cols {
                    let mut best = prev[i];
                    if i > 0 {
                        best = best.min(prev[i - 1]);
                    }
                    if i < cols - 1 {
                        best = best.min(prev[i + 1]);
                    }
                    cur[i] = wall[r * cols + i] + best;
                }
            }
            let want = cur;
            // Device: ping-pong between buffers 1 and 2, starting from row 0
            // costs in buffer 1.
            let mut launches = Vec::new();
            let g = (cols as u32).next_multiple_of(16);
            for r in 1..rows {
                let (src, dst) = if r % 2 == 1 { (1, 2) } else { (2, 1) };
                launches.push(Launch {
                    kernel: "pathfinder_row",
                    nd: NdRange::d1(g, 16),
                    args: vec![
                        LArg::Buf(0),
                        LArg::Buf(src),
                        LArg::Buf(dst),
                        LArg::I32(cols as i32),
                        LArg::I32(r as i32),
                    ],
                });
            }
            let final_buf = if (rows - 1) % 2 == 1 { 2 } else { 1 };
            let row0: Vec<i32> = wall[..cols].to_vec();
            Workload {
                buffers: vec![
                    HostData::I32(wall),
                    HostData::I32(row0),
                    HostData::I32(vec![0; cols]),
                ],
                launches,
                check: Box::new(move |bufs| {
                    expect_eq_i32(bufs[final_buf].as_i32(), &want, "pathfinder")
                }),
            }
        },
    }
}

/// Particlefilter (Rodinia): likelihood-weight update plus systematic
/// resampling against a host-provided CDF.
pub fn particlefilter() -> Benchmark {
    Benchmark {
        name: "Particlefilter",
        origin: "Rodinia",
        source: r#"
            __kernel void pf_likelihood(__global const float* x, __global float* w,
                                        float z, float inv_var) {
                int i = get_global_id(0);
                float d = z - x[i];
                w[i] = w[i] * exp(-0.5f * d * d * inv_var);
            }
            __kernel void pf_resample(__global const float* cdf, __global const float* x,
                                      __global float* out, int n) {
                int i = get_global_id(0);
                if (i < n) {
                    float u = ((float)i + 0.5f) / (float)n;
                    int idx = 0;
                    for (int j = 0; j < n; j++) {
                        if (cdf[j] < u) idx = j + 1;
                    }
                    if (idx > n - 1) idx = n - 1;
                    out[i] = x[idx];
                }
            }
        "#,
        workload: |scale| {
            let n = scale.pick(64, 1024) as usize;
            let z = 5.0f32;
            let inv_var = 0.5f32;
            let mut rng = Prng::new(72);
            let x: Vec<f32> = (0..n).map(|_| rng.next_f32() * 10.0).collect();
            let w0: Vec<f32> = vec![1.0 / n as f32; n];
            // Reference likelihood.
            let want_w: Vec<f32> = (0..n)
                .map(|i| {
                    let d = z - x[i];
                    w0[i] * (-0.5 * d * d * inv_var).exp()
                })
                .collect();
            // Host builds the normalized CDF from the reference weights (as
            // Rodinia's host code does between kernels).
            let total: f32 = want_w.iter().sum();
            let mut cdf = vec![0.0f32; n];
            let mut acc = 0.0;
            for (c, w) in cdf.iter_mut().zip(&want_w) {
                acc += w / total;
                *c = acc;
            }
            let want_out: Vec<f32> = (0..n)
                .map(|i| {
                    let u = (i as f32 + 0.5) / n as f32;
                    let mut idx = 0usize;
                    for (j, c) in cdf.iter().enumerate() {
                        if *c < u {
                            idx = j + 1;
                        }
                    }
                    x[idx.min(n - 1)]
                })
                .collect();
            let g = (n as u32).next_multiple_of(16);
            Workload {
                buffers: vec![
                    HostData::F32(x),
                    HostData::F32(w0),
                    HostData::F32(cdf),
                    HostData::F32(vec![0.0; n]),
                ],
                launches: vec![
                    Launch {
                        kernel: "pf_likelihood",
                        nd: NdRange::d1(n as u32, 16),
                        args: vec![LArg::Buf(0), LArg::Buf(1), LArg::F32(z), LArg::F32(inv_var)],
                    },
                    Launch {
                        kernel: "pf_resample",
                        nd: NdRange::d1(g, 16),
                        args: vec![
                            LArg::Buf(2),
                            LArg::Buf(0),
                            LArg::Buf(3),
                            LArg::I32(n as i32),
                        ],
                    },
                ],
                check: Box::new(move |bufs| {
                    expect_close(bufs[1].as_f32(), &want_w, 1e-4, "pf weights")?;
                    expect_close(bufs[3].as_f32(), &want_out, 0.0, "pf resample")
                }),
            }
        },
    }
}

/// Dwt2d (Rodinia): one level of a separable 4-tap wavelet transform, rows
/// then columns, writing approximation and detail halves.
pub fn dwt2d() -> Benchmark {
    Benchmark {
        name: "Dwd2d",
        origin: "Rodinia",
        source: r#"
            __kernel void dwt_rows(__global const float* in, __global float* out,
                                   int w, int h) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int half = w / 2;
                if (x < half && y < h) {
                    int x0 = 2 * x;
                    int xm = x0 - 1;
                    if (xm < 0) xm = 0;
                    int xp = 2 * x + 1;
                    int xq = 2 * x + 2;
                    if (xq > w - 1) xq = w - 1;
                    float a = in[y * w + xm];
                    float b = in[y * w + x0];
                    float c = in[y * w + xp];
                    float d = in[y * w + xq];
                    out[y * w + x] = 0.25f * a + 0.5f * b + 0.25f * c;
                    out[y * w + half + x] = 0.5f * b - 0.5f * c + 0.125f * a + 0.125f * d;
                }
            }
            __kernel void dwt_cols(__global const float* in, __global float* out,
                                   int w, int h) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int half = h / 2;
                if (y < half && x < w) {
                    int y0 = 2 * y;
                    int ym = y0 - 1;
                    if (ym < 0) ym = 0;
                    int yp = 2 * y + 1;
                    int yq = 2 * y + 2;
                    if (yq > h - 1) yq = h - 1;
                    float a = in[ym * w + x];
                    float b = in[y0 * w + x];
                    float c = in[yp * w + x];
                    float d = in[yq * w + x];
                    out[y * w + x] = 0.25f * a + 0.5f * b + 0.25f * c;
                    out[(half + y) * w + x] = 0.5f * b - 0.5f * c + 0.125f * a + 0.125f * d;
                }
            }
        "#,
        workload: |scale| {
            let w = scale.pick(32, 128) as usize;
            let h = scale.pick(16, 128) as usize;
            let mut rng = Prng::new(73);
            let input: Vec<f32> = (0..w * h).map(|_| rng.next_f32() * 8.0).collect();
            // Reference: rows pass into tmp, cols pass into out.
            let rows_ref = |src: &[f32], dst: &mut [f32]| {
                let half = w / 2;
                for y in 0..h {
                    for x in 0..half {
                        let x0 = 2 * x;
                        let xm = x0.saturating_sub(1);
                        let xp = 2 * x + 1;
                        let xq = (2 * x + 2).min(w - 1);
                        let (a, b, c, d) = (
                            src[y * w + xm],
                            src[y * w + x0],
                            src[y * w + xp],
                            src[y * w + xq],
                        );
                        dst[y * w + x] = 0.25 * a + 0.5 * b + 0.25 * c;
                        dst[y * w + half + x] = 0.5 * b - 0.5 * c + 0.125 * a + 0.125 * d;
                    }
                }
            };
            let cols_ref = |src: &[f32], dst: &mut [f32]| {
                let half = h / 2;
                for y in 0..half {
                    for x in 0..w {
                        let y0 = 2 * y;
                        let ym = y0.saturating_sub(1);
                        let yp = 2 * y + 1;
                        let yq = (2 * y + 2).min(h - 1);
                        let (a, b, c, d) = (
                            src[ym * w + x],
                            src[y0 * w + x],
                            src[yp * w + x],
                            src[yq * w + x],
                        );
                        dst[y * w + x] = 0.25 * a + 0.5 * b + 0.25 * c;
                        dst[(half + y) * w + x] = 0.5 * b - 0.5 * c + 0.125 * a + 0.125 * d;
                    }
                }
            };
            let mut tmp = vec![0.0f32; w * h];
            rows_ref(&input, &mut tmp);
            let mut want = vec![0.0f32; w * h];
            cols_ref(&tmp, &mut want);
            Workload {
                buffers: vec![
                    HostData::F32(input),
                    HostData::F32(vec![0.0; w * h]),
                    HostData::F32(vec![0.0; w * h]),
                ],
                launches: vec![
                    Launch {
                        kernel: "dwt_rows",
                        nd: NdRange::d2((w as u32 / 2).next_multiple_of(8), h as u32, 8, 8),
                        args: vec![
                            LArg::Buf(0),
                            LArg::Buf(1),
                            LArg::I32(w as i32),
                            LArg::I32(h as i32),
                        ],
                    },
                    Launch {
                        kernel: "dwt_cols",
                        nd: NdRange::d2(
                            (w as u32).next_multiple_of(8),
                            (h as u32 / 2).next_multiple_of(8),
                            8,
                            8,
                        ),
                        args: vec![
                            LArg::Buf(1),
                            LArg::Buf(2),
                            LArg::I32(w as i32),
                            LArg::I32(h as i32),
                        ],
                    },
                ],
                check: Box::new(move |bufs| {
                    expect_close(bufs[2].as_f32(), &want, 1e-4, "dwt2d out")
                }),
            }
        },
    }
}
