//! Benchmark specification types.

use ocl_ir::interp::NdRange;

/// Problem-size scale: `Test` keeps cycle-level simulation fast; `Paper`
/// approaches the evaluation sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Test,
    Paper,
}

impl Scale {
    /// Pick a size by scale.
    pub fn pick(self, test: u32, paper: u32) -> u32 {
        match self {
            Scale::Test => test,
            Scale::Paper => paper,
        }
    }
}

/// Host-side buffer contents.
#[derive(Debug, Clone, PartialEq)]
pub enum HostData {
    F32(Vec<f32>),
    I32(Vec<i32>),
    U32(Vec<u32>),
}

impl HostData {
    /// Length in 32-bit words.
    pub fn words(&self) -> usize {
        match self {
            HostData::F32(v) => v.len(),
            HostData::I32(v) => v.len(),
            HostData::U32(v) => v.len(),
        }
    }

    /// Raw little-endian words.
    pub fn to_words(&self) -> Vec<u32> {
        match self {
            HostData::F32(v) => v.iter().map(|x| x.to_bits()).collect(),
            HostData::I32(v) => v.iter().map(|x| *x as u32).collect(),
            HostData::U32(v) => v.clone(),
        }
    }

    /// Interpret raw words back with this buffer's type.
    pub fn from_words(&self, words: Vec<u32>) -> HostData {
        match self {
            HostData::F32(_) => HostData::F32(words.into_iter().map(f32::from_bits).collect()),
            HostData::I32(_) => HostData::I32(words.into_iter().map(|w| w as i32).collect()),
            HostData::U32(_) => HostData::U32(words),
        }
    }

    /// The f32 view (panics if the buffer is integer — test-code only).
    pub fn as_f32(&self) -> &[f32] {
        match self {
            HostData::F32(v) => v,
            other => panic!("expected f32 buffer, found {other:?}"),
        }
    }

    /// The i32 view.
    pub fn as_i32(&self) -> &[i32] {
        match self {
            HostData::I32(v) => v,
            other => panic!("expected i32 buffer, found {other:?}"),
        }
    }

    /// The u32 view.
    pub fn as_u32(&self) -> &[u32] {
        match self {
            HostData::U32(v) => v,
            other => panic!("expected u32 buffer, found {other:?}"),
        }
    }
}

/// A launch argument: a workload buffer by index or an immediate scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LArg {
    Buf(usize),
    I32(i32),
    U32(u32),
    F32(f32),
}

/// One kernel launch within a benchmark run.
#[derive(Debug, Clone)]
pub struct Launch {
    pub kernel: &'static str,
    pub nd: NdRange,
    pub args: Vec<LArg>,
}

/// Verification callback over the final buffer states.
pub type Check = Box<dyn Fn(&[HostData]) -> Result<(), String>>;

/// A concrete workload: buffers, launch sequence, verifier.
pub struct Workload {
    pub buffers: Vec<HostData>,
    pub launches: Vec<Launch>,
    pub check: Check,
}

/// A benchmark of the suite.
pub struct Benchmark {
    /// Table I name.
    pub name: &'static str,
    /// Originating suite ("Rodinia" / "NVIDIA SDK").
    pub origin: &'static str,
    /// OpenCL-C subset source (all kernels).
    pub source: &'static str,
    /// Build a workload at the given scale.
    pub workload: fn(Scale) -> Workload,
}

/// Deterministic xorshift PRNG so workloads are reproducible without
/// threading a seed through every benchmark constructor.
pub struct Prng(u64);

impl Prng {
    pub fn new(seed: u64) -> Self {
        Prng(seed.max(1))
    }

    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 32) as u32
    }

    /// Uniform float in [0, 1).
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u32() >> 8) as f32 / (1 << 24) as f32
    }

    /// Uniform integer in [0, n).
    pub fn below(&mut self, n: u32) -> u32 {
        self.next_u32() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostdata_roundtrip() {
        let d = HostData::F32(vec![1.5, -2.0]);
        let w = d.to_words();
        assert_eq!(d.from_words(w), d);
        let i = HostData::I32(vec![-3, 4]);
        assert_eq!(i.from_words(i.to_words()), i);
    }

    #[test]
    fn prng_is_deterministic() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let f = a.next_f32();
        assert!((0.0..1.0).contains(&f));
        assert!(a.below(10) < 10);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Test.pick(8, 256), 8);
        assert_eq!(Scale::Paper.pick(8, 256), 256);
    }
}
