//! Executes a benchmark workload through each of the three back ends and
//! verifies results — the suite's equivalent of the paper's "identical
//! source code on both platforms" methodology.

use crate::spec::{Benchmark, HostData, LArg, Launch, Scale, Workload};
use fpga_arch::Device;
use hls_flow::SynthFailure;
use ocl_ir::interp::{self, KernelArg, Limits, Memory};
use ocl_ir::passes::OptLevel;
use repro_diag::ReproError;
use repro_util::metrics;
use vortex_rt::{Arg, VxSession};
use vortex_sim::{RecordingSink, SimConfig, TraceEvent};

/// The optimization level every execution path shares unless a caller picks
/// another one — the automated form of the paper's §III-B "O1" rewrite.
///
/// Synthesis-area artifacts (Tables I–III) deliberately keep compiling the
/// source *as written*, because the paper's area story is about source-level
/// rewrites fed verbatim to the Intel SDK; see [`run_hls_at`].
pub const DEFAULT_OPT: OptLevel = OptLevel::VariableReuse;

/// Compile a benchmark's source and run the shared middle end at `level`.
///
/// Every execution consumer — the reference interpreter, the Vortex flow and
/// the HLS pipelined-execution model — goes through this single entry point,
/// so all back ends consume the *same* optimized module instead of silently
/// comparing different programs. The compile is served by the process-global
/// content-addressed cache ([`repro_cache::global`]), which replaced the
/// ad-hoc per-process memoization this module used to carry: keys survive
/// process restarts, and repeat traffic shows up as `cache.{hit,miss}`.
pub fn compile_bench(b: &Benchmark, level: OptLevel) -> Result<ocl_ir::Module, ReproError> {
    repro_cache::global().optimize(b.source, level)
}

/// Outcome of running one benchmark on one back end.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Estimated / simulated kernel cycles summed over all launches.
    pub cycles: u64,
    /// Total dynamic instructions (interpreter steps or simulator retires).
    pub instructions: u64,
    /// Device printf output.
    pub printf_output: Vec<String>,
}

/// Run on the reference interpreter at [`DEFAULT_OPT`] and verify.
pub fn run_reference(b: &Benchmark, scale: Scale) -> Result<RunOutcome, ReproError> {
    run_on_interp(b, scale, DEFAULT_OPT)
}

/// Run on the reference interpreter at an explicit optimization level and
/// verify — the reference side of the per-level differential tests.
pub fn run_on_interp(
    b: &Benchmark,
    scale: Scale,
    level: OptLevel,
) -> Result<RunOutcome, ReproError> {
    metrics::counter_add("suite.runs.interp", 1);
    let module = compile_bench(b, level)?;
    let w = (b.workload)(scale);
    let mut mem = Memory::new(32 << 20);
    let addrs: Vec<u32> = w
        .buffers
        .iter()
        .map(|h| mem.try_alloc_u32(&h.to_words()))
        .collect::<Result<_, _>>()?;
    let mut steps = 0;
    let mut printf_output = Vec::new();
    for l in &w.launches {
        let kernel = module
            .kernel(l.kernel)
            .ok_or_else(|| ReproError::harness(format!("kernel `{}` missing", l.kernel)))?;
        let args: Vec<KernelArg> = l
            .args
            .iter()
            .map(|a| match a {
                LArg::Buf(i) => KernelArg::Ptr(addrs[*i]),
                LArg::I32(v) => KernelArg::I32(*v),
                LArg::U32(v) => KernelArg::U32(*v),
                LArg::F32(v) => KernelArg::F32(*v),
            })
            .collect();
        let r = metrics::time("suite.interp.launch", || {
            interp::run_ndrange(kernel, &args, &l.nd, &mut mem, &Limits::default())
        })?;
        steps += r.steps;
        printf_output.extend(r.printf_output);
    }
    let finals = read_back(&w, &addrs, |addr, len| mem.read_u32_slice(addr, len));
    (w.check)(&finals).map_err(|m| ReproError::WrongResult { message: m })?;
    Ok(RunOutcome {
        cycles: 0,
        instructions: steps,
        printf_output,
    })
}

/// Run on the Vortex flow (compile → simulate) at [`DEFAULT_OPT`] and verify.
pub fn run_vortex(b: &Benchmark, scale: Scale, cfg: &SimConfig) -> Result<RunOutcome, ReproError> {
    run_vortex_at(b, scale, cfg, DEFAULT_OPT)
}

/// Run on the Vortex flow at an explicit optimization level and verify.
pub fn run_vortex_at(
    b: &Benchmark,
    scale: Scale,
    cfg: &SimConfig,
    level: OptLevel,
) -> Result<RunOutcome, ReproError> {
    let trace = run_vortex_with(b, scale, cfg, level, |sess, l, args| {
        Ok(sess.launch_named(l.kernel, args, &l.nd)?)
    })?;
    Ok(RunOutcome {
        cycles: trace.launch_stats.iter().map(|s| s.cycles).sum(),
        instructions: trace.launch_stats.iter().map(|s| s.instructions).sum(),
        printf_output: trace.printf_output,
    })
}

/// Everything observable about a Vortex run, for differential testing of
/// the simulator's schedulers: full per-launch statistics (including the
/// stall breakdown) and the final word-level contents of every buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VortexTrace {
    /// Full simulator statistics, one entry per launch.
    pub launch_stats: Vec<vortex_sim::SimStats>,
    /// Final contents of each workload buffer, in declaration order.
    pub buffers: Vec<Vec<u32>>,
    /// Device printf output across all launches.
    pub printf_output: Vec<String>,
}

/// Run on the Vortex flow like [`run_vortex`], but capture the full
/// observable state instead of the summary counters. The workload's result
/// check still runs, so a trace is also a correctness witness.
pub fn run_vortex_trace(
    b: &Benchmark,
    scale: Scale,
    cfg: &SimConfig,
) -> Result<VortexTrace, ReproError> {
    run_vortex_trace_at(b, scale, cfg, DEFAULT_OPT)
}

/// [`run_vortex_trace`] at an explicit optimization level.
pub fn run_vortex_trace_at(
    b: &Benchmark,
    scale: Scale,
    cfg: &SimConfig,
    level: OptLevel,
) -> Result<VortexTrace, ReproError> {
    run_vortex_with(b, scale, cfg, level, |sess, l, args| {
        Ok(sess.launch_named(l.kernel, args, &l.nd)?)
    })
}

/// Run on the Vortex flow with event tracing enabled: like
/// [`run_vortex_trace`], plus the recorded [`TraceEvent`] stream of every
/// launch (one `Vec` per launch, in launch order).
pub fn run_vortex_events(
    b: &Benchmark,
    scale: Scale,
    cfg: &SimConfig,
) -> Result<(VortexTrace, Vec<Vec<TraceEvent>>), ReproError> {
    run_vortex_events_at(b, scale, cfg, DEFAULT_OPT)
}

/// [`run_vortex_events`] at an explicit optimization level.
pub fn run_vortex_events_at(
    b: &Benchmark,
    scale: Scale,
    cfg: &SimConfig,
    level: OptLevel,
) -> Result<(VortexTrace, Vec<Vec<TraceEvent>>), ReproError> {
    let mut launches = Vec::new();
    let trace = run_vortex_with(b, scale, cfg, level, |sess, l, args| {
        let mut sink = RecordingSink::default();
        let r = sess.launch_named_with_sink(l.kernel, args, &l.nd, &mut sink)?;
        launches.push(sink.events);
        Ok(r)
    })?;
    Ok((trace, launches))
}

/// The compile → codegen → session → alloc → launch-loop → readback
/// plumbing every Vortex entry point shares. `launch` performs one launch
/// (so callers choose traced vs untraced) and returns its [`SimResult`]
/// (vortex_sim::SimResult).
fn run_vortex_with(
    b: &Benchmark,
    scale: Scale,
    cfg: &SimConfig,
    level: OptLevel,
    mut launch: impl FnMut(&mut VxSession, &Launch, &[Arg]) -> Result<vortex_sim::SimResult, ReproError>,
) -> Result<VortexTrace, ReproError> {
    metrics::counter_add("suite.runs.vortex", 1);
    let kernels = repro_cache::global().codegen_vortex(b.source, Some(level), cfg.hw.threads)?;
    let w = (b.workload)(scale);
    let mut sess = VxSession::with_kernels(cfg.clone(), kernels);
    let bufs: Vec<vortex_rt::Buffer> = w
        .buffers
        .iter()
        .map(|h| sess.alloc_u32(&h.to_words()))
        .collect::<Result<_, _>>()
        .map_err(ReproError::from)?;
    let mut launch_stats = Vec::with_capacity(w.launches.len());
    let mut printf_output = Vec::new();
    for l in &w.launches {
        let args: Vec<Arg> = l
            .args
            .iter()
            .map(|a| match a {
                LArg::Buf(i) => Arg::Buf(bufs[*i]),
                LArg::I32(v) => Arg::I32(*v),
                LArg::U32(v) => Arg::U32(*v),
                LArg::F32(v) => Arg::F32(*v),
            })
            .collect();
        let r = metrics::time("suite.vortex.launch", || launch(&mut sess, l, &args))?;
        launch_stats.push(r.stats);
        printf_output.extend(r.printf_output);
    }
    let buffers: Vec<Vec<u32>> = w
        .buffers
        .iter()
        .zip(&bufs)
        .map(|(h, &buf)| sess.read_u32(buf, h.words()))
        .collect::<Result<_, _>>()
        .map_err(ReproError::from)?;
    let finals: Vec<HostData> = w
        .buffers
        .iter()
        .zip(&buffers)
        .map(|(h, words)| h.from_words(words.clone()))
        .collect();
    (w.check)(&finals).map_err(|m| ReproError::WrongResult { message: m })?;
    Ok(VortexTrace {
        launch_stats,
        buffers,
        printf_output,
    })
}

/// Run on the HLS flow at [`DEFAULT_OPT`]: synthesize for `device`, then
/// execute the pipelined model and verify. Synthesis failures (the Table I ✗
/// cases) are returned as `Ok(Err(failure))` so coverage harnesses can
/// report them.
#[allow(clippy::type_complexity)]
pub fn run_hls(
    b: &Benchmark,
    scale: Scale,
    device: &Device,
) -> Result<Result<RunOutcome, SynthFailure>, ReproError> {
    run_hls_at(b, scale, device, DEFAULT_OPT)
}

/// [`run_hls`] at an explicit optimization level.
///
/// Synthesis (the area/coverage gate) always consumes the source *as
/// written*, mirroring how the paper feeds the verbatim kernels of Tables
/// I–III to the Intel SDK; `level` applies to the pipelined *execution*
/// model, so the HLS run computes with exactly the module the interpreter
/// and the Vortex flow execute.
#[allow(clippy::type_complexity)]
pub fn run_hls_at(
    b: &Benchmark,
    scale: Scale,
    device: &Device,
    level: OptLevel,
) -> Result<Result<RunOutcome, SynthFailure>, ReproError> {
    metrics::counter_add("suite.runs.hls", 1);
    if let Err(f) = repro_cache::global().synthesize_hls(b.source, device)? {
        return Ok(Err(f));
    }
    let module = compile_bench(b, level)?;
    let w = (b.workload)(scale);
    let mut mem = Memory::new(32 << 20);
    let addrs: Vec<u32> = w
        .buffers
        .iter()
        .map(|h| mem.try_alloc_u32(&h.to_words()))
        .collect::<Result<_, _>>()?;
    let mut cycles = 0;
    let mut instructions = 0;
    let mut printf_output = Vec::new();
    for l in &w.launches {
        let kernel = module
            .kernel(l.kernel)
            .ok_or_else(|| ReproError::harness(format!("kernel `{}` missing", l.kernel)))?;
        let args: Vec<KernelArg> = l
            .args
            .iter()
            .map(|a| match a {
                LArg::Buf(i) => KernelArg::Ptr(addrs[*i]),
                LArg::I32(v) => KernelArg::I32(*v),
                LArg::U32(v) => KernelArg::U32(*v),
                LArg::F32(v) => KernelArg::F32(*v),
            })
            .collect();
        let r = hls_flow::execute_ndrange(kernel, &args, &l.nd, &mut mem, device)?;
        cycles += r.cycles;
        instructions += r.exec.steps;
        printf_output.extend(r.exec.printf_output);
    }
    let finals = read_back(&w, &addrs, |addr, len| mem.read_u32_slice(addr, len));
    (w.check)(&finals).map_err(|m| ReproError::WrongResult { message: m })?;
    Ok(Ok(RunOutcome {
        cycles,
        instructions,
        printf_output,
    }))
}

/// The crash-isolation primitive behind `repro check` and the scheduler's
/// workers, re-exported from `repro-diag` where it lives next to the
/// failure taxonomy it reports into.
pub use repro_diag::run_isolated;

fn read_back<H: Copy>(
    w: &Workload,
    handles: &[H],
    read: impl Fn(H, usize) -> Vec<u32>,
) -> Vec<HostData> {
    w.buffers
        .iter()
        .zip(handles)
        .map(|(h, &handle)| h.from_words(read(handle, h.words())))
        .collect()
}

/// Assert two float slices match within `tol` (shared by benchmark checks).
pub fn expect_close(got: &[f32], want: &[f32], tol: f32, what: &str) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{what}: length mismatch {} vs {}",
            got.len(),
            want.len()
        ));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        if (g - w).abs() > tol * scale {
            return Err(format!("{what}[{i}]: got {g}, want {w}"));
        }
    }
    Ok(())
}

/// Assert two int slices match exactly.
pub fn expect_eq_i32(got: &[i32], want: &[i32], what: &str) -> Result<(), String> {
    if got != want {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            if g != w {
                return Err(format!("{what}[{i}]: got {g}, want {w}"));
            }
        }
        return Err(format!("{what}: length mismatch"));
    }
    Ok(())
}
