//! `ocl-suite` — the 28-benchmark workload suite of the paper's Table I.
//!
//! Ports of the Rodinia and NVIDIA OpenCL SDK benchmarks to the OpenCL-C
//! subset, scaled down to simulator-friendly sizes while preserving the
//! kernel *structure* that drives the paper's results: the number and kind
//! of global-memory access sites (HLS LSU/BRAM costs), atomics
//! (hybridsort's failure), barriers and `__local` arrays (scheduling
//! constraints), and control-flow divergence (Vortex SPLIT/JOIN/PRED).
//!
//! Every benchmark carries a host-side reference implementation; the
//! [`runner`] module executes the same source through the reference
//! interpreter, the Vortex flow, and the HLS flow, and verifies outputs.
//!
//! The backprop benchmark ships the paper's three kernel variants
//! (Figure 6): original, O1 variable reuse, and O2 `__pipelined_load` — the
//! inputs to Table II.

pub mod benches;
pub mod jobs;
pub mod runner;
pub mod spec;

pub use jobs::{instantiate, run_oneshot, run_request};
pub use repro_diag::{FailureClass, ReproError};
pub use runner::{
    compile_bench, run_hls, run_hls_at, run_isolated, run_on_interp, run_reference, run_vortex,
    run_vortex_at, run_vortex_events, run_vortex_events_at, run_vortex_trace, run_vortex_trace_at,
    RunOutcome, VortexTrace, DEFAULT_OPT,
};
pub use spec::{Benchmark, HostData, LArg, Launch, Scale, Workload};

/// All 28 benchmarks, in the paper's Table I order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        benches::simple::vecadd(),
        benches::linalg::sgemm(),
        benches::sort::psort(),
        benches::simple::saxpy(),
        benches::simple::sfilter(),
        benches::simple::dotproduct(),
        benches::physics::spmv(),
        benches::physics::cutcp(),
        benches::physics::stencil(),
        benches::physics::lbm(),
        benches::simple::oclprintf(),
        benches::simple::blackscholes(),
        benches::linalg::matmul(),
        benches::linalg::transpose(),
        benches::ml::kmeans(),
        benches::ml::nearn(),
        benches::linalg::gaussian(),
        benches::graph::bfs(),
        benches::ml::backprop(),
        benches::ml::streamcluster(),
        benches::misc::pathfinder(),
        benches::linalg::nw(),
        benches::graph::btree(),
        benches::physics::lavamd(),
        benches::sort::hybridsort(),
        benches::misc::particlefilter(),
        benches::misc::dwt2d(),
        benches::linalg::lud(),
    ]
}

/// Look up a benchmark by its Table I name (case-insensitive).
pub fn benchmark(name: &str) -> Option<Benchmark> {
    all_benchmarks()
        .into_iter()
        .find(|b| b.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_28_benchmarks_in_table1_order() {
        let names: Vec<_> = all_benchmarks().iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 28);
        assert_eq!(names[0], "Vecadd");
        assert_eq!(names[9], "Lbm");
        assert_eq!(names[18], "Backprop");
        assert_eq!(names[24], "Hybridsort");
        assert_eq!(names[27], "LUD");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(benchmark("vecadd").is_some());
        assert!(benchmark("BFS").is_some());
        assert!(benchmark("nope").is_none());
    }

    #[test]
    fn all_sources_compile() {
        for b in all_benchmarks() {
            ocl_front::compile(b.source)
                .unwrap_or_else(|e| panic!("{} fails to compile: {e}", b.name));
        }
    }
}
