//! Suite-wide coverage tests — the executable form of the paper's Table I:
//! every benchmark must pass the reference interpreter and the Vortex flow;
//! on the HLS flow exactly the six benchmarks the paper lists must fail,
//! with the paper's failure reasons.

use fpga_arch::{Device, VortexConfig};
use ocl_suite::{all_benchmarks, benchmark, run_hls, run_reference, run_vortex, Scale};
use vortex_sim::SimConfig;

#[test]
fn reference_interpreter_passes_all_28() {
    for b in all_benchmarks() {
        run_reference(&b, Scale::Test).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    }
}

/// Table I, Vortex column: every benchmark runs (coverage config 2c4w16t —
/// one of the synthesizable Table IV configurations).
#[test]
fn vortex_passes_all_28() {
    let cfg = SimConfig::new(VortexConfig::new(2, 4, 16));
    for b in all_benchmarks() {
        run_vortex(&b, Scale::Test, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    }
}

/// Table I, Intel SDK column: six failures with the paper's reasons.
#[test]
fn hls_coverage_matches_table1() {
    let device = Device::mx2100();
    let expected_failures: &[(&str, &str)] = &[
        ("Lbm", "Not enough BRAM"),
        ("Backprop", "Not enough BRAM"),
        ("B+tree", "Not enough BRAM"),
        ("Hybridsort", "Atomics"),
        ("Dwd2d", "Not enough BRAM"),
        ("LUD", "Not enough BRAM"),
    ];
    for b in all_benchmarks() {
        let outcome = run_hls(&b, Scale::Test, &device)
            .unwrap_or_else(|e| panic!("{} harness error: {e}", b.name));
        let expected = expected_failures.iter().find(|(n, _)| *n == b.name);
        match (outcome, expected) {
            (Ok(_), None) => {}
            (Err(f), Some((_, reason))) => {
                assert_eq!(
                    &f.reason(),
                    reason,
                    "{}: wrong failure reason ({f})",
                    b.name
                );
            }
            (Ok(_), Some((_, reason))) => {
                panic!(
                    "{} should fail HLS synthesis with `{reason}` but passed",
                    b.name
                )
            }
            (Err(f), None) => panic!("{} unexpectedly failed HLS synthesis: {f}", b.name),
        }
    }
}

#[test]
fn oclprintf_emits_device_output_on_both_flows() {
    let b = benchmark("OCLPrintf").unwrap();
    let r = run_reference(&b, Scale::Test).unwrap();
    assert_eq!(r.printf_output.len(), 1);
    assert!(
        r.printf_output[0].contains("first=1"),
        "{:?}",
        r.printf_output
    );
    let cfg = SimConfig::new(VortexConfig::new(1, 2, 8));
    let v = run_vortex(&b, Scale::Test, &cfg).unwrap();
    assert_eq!(v.printf_output, r.printf_output);
}

#[test]
fn vortex_runs_on_multiple_configs() {
    // A couple of representative benchmarks across hardware shapes, making
    // sure results are config-independent (only cycles change).
    for hw in [
        VortexConfig::new(1, 2, 4),
        VortexConfig::new(2, 8, 8),
        VortexConfig::new(4, 4, 4),
    ] {
        let cfg = SimConfig::new(hw);
        for name in ["Vecadd", "Transpose", "BFS"] {
            let b = benchmark(name).unwrap();
            run_vortex(&b, Scale::Test, &cfg).unwrap_or_else(|e| panic!("{name} on {hw}: {e}"));
        }
    }
}
