//! The shared failure taxonomy for the whole reproduction.
//!
//! Every flow — frontend compile, IR interpretation, HLS synthesis, the
//! Vortex cycle simulator, and the suite harness around them — reports
//! user-kernel failures as a [`ReproError`]. The paper's Table I is a
//! *coverage* table: which benchmarks each flow can run and which fail,
//! and why. A shared, classified error type is what lets the harness keep
//! going after a failure and still say something precise about it.
//!
//! Producers keep their own local error types (`CompileError`,
//! `InterpError`, `SimError`, …) and convert at the crate boundary via
//! `From` impls defined next to those types; this crate only depends on
//! `repro-util` for JSON serialization, so every other crate can depend
//! on it without cycles.

use repro_util::{Json, ToJson};
use std::fmt;

/// One warp (or interpreter work-item cohort) that can no longer make
/// progress, as named by a deadlock report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StuckWarp {
    pub core: u32,
    pub warp: u32,
    /// PC the warp is parked at (the barrier instruction for barrier
    /// deadlocks).
    pub pc: u32,
    /// `(barrier id, expected arrival count)` if parked at a barrier.
    pub barrier: Option<(u32, u32)>,
    /// How many warps have arrived at that barrier so far.
    pub arrived: u32,
}

impl fmt::Display for StuckWarp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "core {} warp {} @pc={:#x}",
            self.core, self.warp, self.pc
        )?;
        if let Some((id, count)) = self.barrier {
            write!(f, " barrier {id} ({}/{count} arrived)", self.arrived)?;
        }
        Ok(())
    }
}

impl ToJson for StuckWarp {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("core", self.core.to_json()),
            ("warp", self.warp.to_json()),
            ("pc", self.pc.to_json()),
            (
                "barrier",
                match self.barrier {
                    Some((id, count)) => Json::obj(vec![
                        ("id", id.to_json()),
                        ("count", count.to_json()),
                        ("arrived", self.arrived.to_json()),
                    ]),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Coarse failure classification — the column set of the `repro check`
/// coverage report. `Hang` and `Panic` are the classes CI treats as
/// hard failures: a hang means the watchdog fired (the kernel never
/// terminated on its own), a panic means fail-soft isolation caught a
/// bug in *our* stack rather than a classified kernel fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Frontend parse/sema or IR verifier rejection.
    Compile,
    /// HLS flow refused to synthesize the kernel.
    Synthesis,
    /// Out-of-bounds / misaligned access or device memory exhaustion.
    Memory,
    /// Barrier or divergence deadlock (structurally never terminates).
    Deadlock,
    /// Cycle or instruction budget exhausted with no structural diagnosis.
    Hang,
    /// Ran to completion but produced wrong output.
    WrongResult,
    /// A panic escaped the stack and was caught by `catch_unwind`.
    Panic,
    /// Host-side harness error (bad launch geometry, missing kernel, …).
    Harness,
}

impl FailureClass {
    pub fn name(self) -> &'static str {
        match self {
            FailureClass::Compile => "Compile",
            FailureClass::Synthesis => "Synthesis",
            FailureClass::Memory => "Memory",
            FailureClass::Deadlock => "Deadlock",
            FailureClass::Hang => "Hang",
            FailureClass::WrongResult => "WrongResult",
            FailureClass::Panic => "Panic",
            FailureClass::Harness => "Harness",
        }
    }

    /// All classes, in report column order.
    pub fn all() -> [FailureClass; 8] {
        [
            FailureClass::Compile,
            FailureClass::Synthesis,
            FailureClass::Memory,
            FailureClass::Deadlock,
            FailureClass::Hang,
            FailureClass::WrongResult,
            FailureClass::Panic,
            FailureClass::Harness,
        ]
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl ToJson for FailureClass {
    fn to_json(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

/// A classified failure from any layer of either flow.
#[derive(Debug, Clone, PartialEq)]
pub enum ReproError {
    /// Frontend diagnostic (preprocess, lex, parse, lowering) with a
    /// source location when one is known.
    Frontend {
        stage: &'static str,
        message: String,
        line: u32,
        col: u32,
    },
    /// IR verifier rejection.
    Verify { message: String },
    /// Vortex code generation failure (unstructured control flow, …).
    Codegen { message: String },
    /// HLS synthesis rejection, with the paper-calibrated engineering
    /// hours spent before giving up.
    Synthesis { reason: String, hours: f64 },
    /// Out-of-bounds access. `space` names the address space
    /// ("global", "local", "arg", …); `pc` is 0 when the faulting
    /// backend has no program counter (the interpreter).
    OutOfBounds { addr: u32, pc: u32, space: String },
    /// Misaligned word access.
    Misaligned {
        addr: u32,
        align: u32,
        pc: u32,
        space: String,
    },
    /// Device memory exhausted while servicing a host allocation.
    OutOfMemory { requested: u32, available: u32 },
    /// Every live warp is parked at a barrier whose arrival count can
    /// never be reached.
    BarrierDeadlock { stuck: Vec<StuckWarp> },
    /// Some work finished (or uniformly skipped the barrier) while the
    /// rest waits forever — a barrier executed under divergence.
    DivergenceDeadlock { stuck: Vec<StuckWarp> },
    /// Watchdog: cycle budget exhausted.
    CycleBudget { limit: u64 },
    /// Watchdog: instruction budget exhausted.
    InstructionBudget { limit: u64 },
    /// Scheduler watchdog: the job's host-side wall-clock deadline passed
    /// before it finished. The simulator budgets bound *simulated* work;
    /// this bounds *service latency* — a job that blows its deadline is
    /// reported typed instead of silently occupying a worker.
    DeadlineExceeded { deadline_ms: u64 },
    /// Kernel terminated but its output failed the workload's check.
    WrongResult { message: String },
    /// A panic unwound out of the flow and was caught at the isolation
    /// boundary.
    Panic { message: String },
    /// Host-side harness error: bad launch geometry, missing kernel,
    /// readback failure, bad ND-range, bad arguments.
    Harness { message: String },
    /// Admission control shed the job: the serve queue was already at its
    /// configured depth limit when the job arrived. A client seeing this
    /// should back off and resubmit — nothing about the job itself failed.
    Overloaded { queued: usize, limit: usize },
    /// The service is draining toward shutdown; queued jobs are rejected
    /// typed (in-flight jobs still finish). Resubmit elsewhere/later.
    Draining,
}

impl ReproError {
    pub fn class(&self) -> FailureClass {
        match self {
            ReproError::Frontend { .. }
            | ReproError::Verify { .. }
            | ReproError::Codegen { .. } => FailureClass::Compile,
            ReproError::Synthesis { .. } => FailureClass::Synthesis,
            ReproError::OutOfBounds { .. }
            | ReproError::Misaligned { .. }
            | ReproError::OutOfMemory { .. } => FailureClass::Memory,
            ReproError::BarrierDeadlock { .. } | ReproError::DivergenceDeadlock { .. } => {
                FailureClass::Deadlock
            }
            ReproError::CycleBudget { .. }
            | ReproError::InstructionBudget { .. }
            | ReproError::DeadlineExceeded { .. } => FailureClass::Hang,
            ReproError::WrongResult { .. } => FailureClass::WrongResult,
            ReproError::Panic { .. } => FailureClass::Panic,
            ReproError::Harness { .. } | ReproError::Overloaded { .. } | ReproError::Draining => {
                FailureClass::Harness
            }
        }
    }

    /// Whether retrying the same job could plausibly succeed. Transient
    /// failures are environmental — load, scheduling, timing — while
    /// permanent ones are properties of the job itself (a kernel that
    /// doesn't compile won't compile on attempt three). The serve retry
    /// loop only re-runs transient classes; retrying a deterministic
    /// failure would burn a worker slot to reproduce the same error.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ReproError::DeadlineExceeded { .. }
                | ReproError::Panic { .. }
                | ReproError::Overloaded { .. }
                | ReproError::Draining
        )
    }

    /// Variant name without payload, for compact report cells.
    pub fn kind(&self) -> &'static str {
        match self {
            ReproError::Frontend { .. } => "Frontend",
            ReproError::Verify { .. } => "Verify",
            ReproError::Codegen { .. } => "Codegen",
            ReproError::Synthesis { .. } => "Synthesis",
            ReproError::OutOfBounds { .. } => "OutOfBounds",
            ReproError::Misaligned { .. } => "Misaligned",
            ReproError::OutOfMemory { .. } => "OutOfMemory",
            ReproError::BarrierDeadlock { .. } => "BarrierDeadlock",
            ReproError::DivergenceDeadlock { .. } => "DivergenceDeadlock",
            ReproError::CycleBudget { .. } => "CycleBudget",
            ReproError::InstructionBudget { .. } => "InstructionBudget",
            ReproError::DeadlineExceeded { .. } => "DeadlineExceeded",
            ReproError::WrongResult { .. } => "WrongResult",
            ReproError::Panic { .. } => "Panic",
            ReproError::Harness { .. } => "Harness",
            ReproError::Overloaded { .. } => "Overloaded",
            ReproError::Draining => "Draining",
        }
    }

    /// Convenience constructor for harness-layer string errors.
    pub fn harness(message: impl Into<String>) -> ReproError {
        ReproError::Harness {
            message: message.into(),
        }
    }
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::Frontend {
                stage,
                message,
                line,
                col,
            } => {
                if *line > 0 {
                    write!(f, "{stage} error at {line}:{col}: {message}")
                } else {
                    write!(f, "{stage} error: {message}")
                }
            }
            ReproError::Verify { message } => write!(f, "IR verify error: {message}"),
            ReproError::Codegen { message } => write!(f, "codegen error: {message}"),
            ReproError::Synthesis { reason, hours } => {
                write!(f, "synthesis failed after {hours:.0}h: {reason}")
            }
            ReproError::OutOfBounds { addr, pc, space } => {
                write!(f, "out-of-bounds {space} access at addr {addr:#x}")?;
                if *pc != 0 {
                    write!(f, " (pc {pc:#x})")?;
                }
                Ok(())
            }
            ReproError::Misaligned {
                addr,
                align,
                pc,
                space,
            } => {
                write!(
                    f,
                    "misaligned {space} access at addr {addr:#x} (align {align})"
                )?;
                if *pc != 0 {
                    write!(f, " (pc {pc:#x})")?;
                }
                Ok(())
            }
            ReproError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes, {available} available"
            ),
            ReproError::BarrierDeadlock { stuck } => {
                write!(f, "barrier deadlock: {} warp(s) stuck", stuck.len())?;
                for w in stuck {
                    write!(f, "; {w}")?;
                }
                Ok(())
            }
            ReproError::DivergenceDeadlock { stuck } => {
                write!(f, "divergence deadlock: {} warp(s) stuck", stuck.len())?;
                for w in stuck {
                    write!(f, "; {w}")?;
                }
                Ok(())
            }
            ReproError::CycleBudget { limit } => {
                write!(f, "cycle budget exhausted ({limit} cycles)")
            }
            ReproError::InstructionBudget { limit } => {
                write!(f, "instruction budget exhausted ({limit} instructions)")
            }
            ReproError::DeadlineExceeded { deadline_ms } => {
                write!(f, "job deadline exceeded ({deadline_ms} ms)")
            }
            ReproError::WrongResult { message } => write!(f, "wrong result: {message}"),
            ReproError::Panic { message } => write!(f, "panic: {message}"),
            ReproError::Harness { message } => write!(f, "harness error: {message}"),
            ReproError::Overloaded { queued, limit } => write!(
                f,
                "overloaded: {queued} job(s) queued, admission limit {limit}"
            ),
            ReproError::Draining => write!(f, "service draining: job rejected before execution"),
        }
    }
}

impl std::error::Error for ReproError {}

impl ToJson for ReproError {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("kind", Json::Str(self.kind().to_string())),
            ("class", self.class().to_json()),
            ("message", Json::Str(self.to_string())),
        ];
        match self {
            ReproError::Frontend {
                stage, line, col, ..
            } => {
                fields.push(("stage", Json::Str(stage.to_string())));
                fields.push(("line", line.to_json()));
                fields.push(("col", col.to_json()));
            }
            ReproError::Synthesis { hours, .. } => fields.push(("hours", hours.to_json())),
            ReproError::OutOfBounds { addr, pc, space } => {
                fields.push(("addr", addr.to_json()));
                fields.push(("pc", pc.to_json()));
                fields.push(("space", space.to_json()));
            }
            ReproError::Misaligned {
                addr,
                align,
                pc,
                space,
            } => {
                fields.push(("addr", addr.to_json()));
                fields.push(("align", align.to_json()));
                fields.push(("pc", pc.to_json()));
                fields.push(("space", space.to_json()));
            }
            ReproError::OutOfMemory {
                requested,
                available,
            } => {
                fields.push(("requested", requested.to_json()));
                fields.push(("available", available.to_json()));
            }
            ReproError::BarrierDeadlock { stuck } | ReproError::DivergenceDeadlock { stuck } => {
                fields.push(("stuck", stuck.to_json()));
            }
            ReproError::CycleBudget { limit } | ReproError::InstructionBudget { limit } => {
                fields.push(("limit", limit.to_json()));
            }
            ReproError::DeadlineExceeded { deadline_ms } => {
                fields.push(("deadline_ms", deadline_ms.to_json()));
            }
            ReproError::Overloaded { queued, limit } => {
                fields.push(("queued", (*queued as u64).to_json()));
                fields.push(("limit", (*limit as u64).to_json()));
            }
            _ => {}
        }
        Json::obj(fields)
    }
}

/// Run a fallible flow with panic isolation: a panic anywhere inside `f`
/// is caught at this boundary and reported as [`ReproError::Panic`]
/// instead of unwinding into (and killing) the harness — or the scheduler
/// worker — that called it.
///
/// This is the crash-isolation primitive behind `repro check` and the
/// `repro-sched` executor: one benchmark (or job) tripping an internal
/// invariant must not cost the coverage report its remaining rows, or a
/// worker thread its life.
pub fn run_isolated<T>(f: impl FnOnce() -> Result<T, ReproError>) -> Result<T, ReproError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(ReproError::Panic {
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Extract a human-readable message from a `catch_unwind` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_partition_the_taxonomy() {
        let stuck = vec![StuckWarp {
            core: 0,
            warp: 1,
            pc: 0x80,
            barrier: Some((0, 4)),
            arrived: 2,
        }];
        let cases: Vec<(ReproError, FailureClass)> = vec![
            (
                ReproError::Frontend {
                    stage: "parse",
                    message: "x".into(),
                    line: 3,
                    col: 7,
                },
                FailureClass::Compile,
            ),
            (
                ReproError::Synthesis {
                    reason: "Irregular".into(),
                    hours: 40.0,
                },
                FailureClass::Synthesis,
            ),
            (
                ReproError::OutOfBounds {
                    addr: 0x1000,
                    pc: 0,
                    space: "global".into(),
                },
                FailureClass::Memory,
            ),
            (
                ReproError::BarrierDeadlock {
                    stuck: stuck.clone(),
                },
                FailureClass::Deadlock,
            ),
            (
                ReproError::DivergenceDeadlock { stuck },
                FailureClass::Deadlock,
            ),
            (ReproError::CycleBudget { limit: 10 }, FailureClass::Hang),
            (
                ReproError::DeadlineExceeded { deadline_ms: 250 },
                FailureClass::Hang,
            ),
            (
                ReproError::Panic {
                    message: "boom".into(),
                },
                FailureClass::Panic,
            ),
        ];
        for (err, class) in cases {
            assert_eq!(err.class(), class, "{err}");
        }
    }

    #[test]
    fn display_names_stuck_warps() {
        let err = ReproError::BarrierDeadlock {
            stuck: vec![StuckWarp {
                core: 1,
                warp: 2,
                pc: 0x40,
                barrier: Some((0, 8)),
                arrived: 4,
            }],
        };
        let text = err.to_string();
        assert!(text.contains("core 1 warp 2"), "{text}");
        assert!(text.contains("barrier 0 (4/8 arrived)"), "{text}");
    }

    #[test]
    fn json_carries_class_and_payload() {
        let err = ReproError::Misaligned {
            addr: 0x1001,
            align: 4,
            pc: 0x20,
            space: "global".into(),
        };
        let j = err.to_json();
        assert_eq!(j.get("class").unwrap().as_str(), Some("Memory"));
        assert_eq!(j.get("kind").unwrap().as_str(), Some("Misaligned"));
        assert_eq!(j.get("addr").unwrap().as_u64(), Some(0x1001));
    }

    #[test]
    fn transient_split_is_conservative() {
        // Transient: worth a retry.
        assert!(ReproError::DeadlineExceeded { deadline_ms: 5 }.is_transient());
        assert!(ReproError::Panic {
            message: "x".into()
        }
        .is_transient());
        assert!(ReproError::Overloaded {
            queued: 9,
            limit: 8
        }
        .is_transient());
        assert!(ReproError::Draining.is_transient());
        // Permanent: deterministic properties of the job.
        assert!(!ReproError::harness("bad args").is_transient());
        assert!(!ReproError::CycleBudget { limit: 10 }.is_transient());
        assert!(!ReproError::WrongResult {
            message: "x".into()
        }
        .is_transient());
        assert!(!ReproError::Verify {
            message: "x".into()
        }
        .is_transient());
    }

    #[test]
    fn overload_and_drain_are_typed_harness_rejections() {
        let err = ReproError::Overloaded {
            queued: 12,
            limit: 8,
        };
        assert_eq!(err.class(), FailureClass::Harness);
        let j = err.to_json();
        assert_eq!(j.get("kind").unwrap().as_str(), Some("Overloaded"));
        assert_eq!(j.get("queued").unwrap().as_u64(), Some(12));
        assert_eq!(j.get("limit").unwrap().as_u64(), Some(8));
        assert_eq!(ReproError::Draining.class(), FailureClass::Harness);
        assert_eq!(ReproError::Draining.kind(), "Draining");
    }

    #[test]
    fn panic_payloads_downcast() {
        let err = std::panic::catch_unwind(|| panic!("kernel bug {}", 7)).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "kernel bug 7");
    }
}
