//! `repro-obs` — host-time observability for the long-running service.
//!
//! The PR 2 tracer sees *simulated* cycles and the PR 5 metrics registry
//! yields one cumulative snapshot at manifest-write time; neither can tell
//! an operator what one request did, or what the service is doing *right
//! now*. This crate adds the missing host-time layer:
//!
//! * **Correlated spans** ([`span`], [`SpanScope`], [`SpanNode`]) — a
//!   per-job tree of nested wall-clock spans (queue wait, cache lookups,
//!   compile stages, launch), recorded on the worker thread that executes
//!   the job and attached to its outcome under a deterministic
//!   [`trace_id`]. The executor brackets each job with [`begin_job`] /
//!   [`end_job`]; everything recorded between the two on that thread lands
//!   in the tree.
//! * **Structured events** ([`event`], [`drain_events`]) — a bounded ring
//!   of service-level happenings (admissions, sheds, retries, drains,
//!   cache degradations) that `repro serve` flushes on
//!   `{"cmd":"events"}`.
//!
//! Mirroring the metrics registry and fault engine, everything here is
//! **off by default and observably free while off**: every recording entry
//! point checks one relaxed atomic load ([`armed`]) and returns before
//! touching a clock, a lock, thread-local state, or an allocation. Batch
//! commands never arm it; `repro serve` does.
//!
//! Determinism: span *structure* (names, nesting, child order) is a pure
//! function of what the job executed, never of which worker ran it or how
//! wide the pool was; only the recorded durations are wall-clock. The
//! `trace_id` is a pure hash of the request's canonical wire form and its
//! batch position, so reruns of the same plan yield the same ids.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use repro_util::{Json, ToJson};

mod events;
mod span;

pub use events::{drain_events, event, Event, EVENT_RING_CAPACITY};
pub use span::{parse_span, SpanNode, SpanScope};

static ARMED: AtomicBool = AtomicBool::new(false);

/// Turn span + event recording on (idempotent). Also registers the
/// [`repro_util::metrics::time`] hook, so every already-instrumented
/// pipeline stage (frontend, middle end, codegen, launch) nests into the
/// current job's span tree with no per-crate changes.
pub fn arm() {
    repro_util::metrics::set_span_hook(span::hook_enter, span::hook_exit);
    ARMED.store(true, Ordering::Relaxed);
}

/// Turn recording off again (the default state).
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Whether recording is armed — one relaxed atomic load, the entire cost
/// of the disarmed path.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Process-wide host-time epoch: every span timestamp and event time is
/// microseconds since this instant. Fixed at first use (service startup in
/// practice), so all timestamps in one process share one timeline.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since [`epoch`].
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Seconds since [`epoch`] — the service uptime `{"cmd":"health"}` reports.
pub fn uptime_secs() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// FNV-1a 64 over a byte slice (the same function the compile cache keys
/// with, re-derived here so the crate stays dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — spreads the batch index so two identical
/// requests in one batch still get distinct ids.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic correlation id for one job: a pure hash of the request's
/// canonical wire form and its position in the submitted batch. No clock,
/// no randomness — the same seeded plan reruns to the same ids.
pub fn trace_id(canonical_request: &str, index: usize) -> u64 {
    mix(fnv1a(canonical_request.as_bytes()) ^ mix(index as u64 + 1))
}

/// The wire spelling of a trace id: 16 lowercase hex digits. JSON numbers
/// are f64 in too many consumers to trust a raw u64 across the wire.
pub fn trace_id_hex(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse the wire spelling back ([`trace_id_hex`] round trip).
pub fn parse_trace_id(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

thread_local! {
    pub(crate) static RECORDER: RefCell<Option<span::Recorder>> = const { RefCell::new(None) };
}

/// Start recording a span tree for one job on the current thread. Replaces
/// any recorder a previous (possibly panicked) job left behind, so a
/// poisoned tree can never leak across jobs. No-op while disarmed; returns
/// whether recording actually started.
pub fn begin_job(trace_id: u64) -> bool {
    if !armed() {
        return false;
    }
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(span::Recorder::new(trace_id, now_us()));
    });
    true
}

/// Finish the current thread's job recording and return the completed span
/// tree. Frames still open (a panicked job unwound past its scopes) are
/// closed at the root's end time, so the tree always tiles. `None` while
/// disarmed or if [`begin_job`] never ran on this thread.
pub fn end_job() -> Option<SpanNode> {
    RECORDER
        .with(|r| r.borrow_mut().take())
        .map(|rec| rec.finish(now_us()))
}

/// Attach an already-measured leaf span to the current job (used for the
/// queue-wait interval, which elapses *before* the worker starts the job).
/// No-op when no recording is active.
pub fn attach_span(name: &str, start_us: u64, dur_us: u64) {
    if !armed() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.attach(name, start_us, dur_us);
        }
    });
}

/// Record `f` as a nested span named `name` in the current job's tree.
/// While disarmed (or outside a job) this is a direct call — no clock.
pub fn span<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let scope = SpanScope::enter(name);
    let r = f();
    drop(scope);
    r
}

/// The global event ring, shared with the [`events`] module.
fn ring() -> &'static Mutex<events::Ring> {
    static RING: OnceLock<Mutex<events::Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(events::Ring::new()))
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", self.seq.to_json()),
            ("t_secs", (self.t_us as f64 * 1e-6).to_json()),
            ("kind", self.kind.to_json()),
            ("detail", self.detail.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Arming state and the recorder TLS are process-global; tests that
    /// flip them must not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn trace_ids_are_deterministic_and_index_sensitive() {
        let a = trace_id(r#"{"bench":"Vecadd"}"#, 0);
        let b = trace_id(r#"{"bench":"Vecadd"}"#, 0);
        let c = trace_id(r#"{"bench":"Vecadd"}"#, 1);
        let d = trace_id(r#"{"bench":"Saxpy"}"#, 0);
        assert_eq!(a, b, "same request + index => same id");
        assert_ne!(a, c, "same request at another batch position differs");
        assert_ne!(a, d, "different request differs");
        let hex = trace_id_hex(a);
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_trace_id(&hex), Some(a));
        assert_eq!(parse_trace_id("zz"), None);
    }

    #[test]
    fn disarmed_records_nothing() {
        let _g = serial();
        disarm();
        assert!(!begin_job(7));
        let mut calls = 0;
        let v = span("work", || {
            calls += 1;
            3
        });
        assert_eq!((v, calls), (3, 1));
        attach_span("queue_wait", 0, 10);
        assert!(end_job().is_none());
        event("shed", "never recorded");
        let (evs, dropped) = drain_events();
        assert!(evs.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn span_tree_nests_and_tiles() {
        let _g = serial();
        arm();
        assert!(begin_job(42));
        attach_span("queue_wait", 0, 5);
        span("compile", || {
            span("lower", || {});
            span("codegen", || {});
        });
        span("launch", || {});
        let tree = end_job().expect("recording was armed");
        disarm();
        assert_eq!(tree.name, "job");
        let names: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["queue_wait", "compile", "launch"]);
        let inner: Vec<&str> = tree.children[1]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(inner, ["lower", "codegen"]);
        // Round trip through the wire form.
        let parsed =
            parse_span(&Json::parse(&tree.to_json().to_pretty()).unwrap()).expect("parses back");
        assert_eq!(parsed.signature(), tree.signature());
        assert_eq!(parsed.name, "job");
    }

    #[test]
    fn unclosed_frames_are_closed_at_end_job() {
        let _g = serial();
        arm();
        begin_job(1);
        // Simulate a panic unwinding past an open scope: enter without exit.
        let scope = SpanScope::enter("doomed");
        std::mem::forget(scope);
        let tree = end_job().unwrap();
        disarm();
        assert_eq!(tree.children.len(), 1);
        assert_eq!(tree.children[0].name, "doomed");
        // A fresh job is unaffected by the leak.
        arm();
        begin_job(2);
        let tree = end_job().unwrap();
        disarm();
        assert!(tree.children.is_empty());
    }

    #[test]
    fn event_ring_is_bounded_and_counts_drops() {
        let _g = serial();
        arm();
        drain_events(); // reset any residue from other tests
        for i in 0..(EVENT_RING_CAPACITY + 10) {
            event("retry", &format!("job {i}"));
        }
        let (evs, dropped) = drain_events();
        disarm();
        assert_eq!(evs.len(), EVENT_RING_CAPACITY);
        assert_eq!(dropped, 10);
        // Oldest were dropped: the survivors are the most recent ones.
        assert!(evs[0].detail.ends_with("10"));
        assert!(evs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        // Drained means drained.
        let (evs, dropped) = drain_events();
        assert!(evs.is_empty());
        assert_eq!(dropped, 0);
    }
}
