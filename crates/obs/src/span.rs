//! Per-job span trees: a nested record of where one request's host time
//! went, built on the worker thread that executes the job.

use repro_util::{Json, ToJson};

/// One node of a job's span tree. Times are microseconds since the
/// process [`epoch`](crate::epoch); durations are wall-clock and therefore
/// nondeterministic — everything else (name, nesting, child order) is a
/// pure function of what the job executed.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    pub name: String,
    pub start_us: u64,
    pub dur_us: u64,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Total nodes in this subtree (root included).
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(SpanNode::count).sum::<usize>()
    }

    /// The duration-free shape of the tree: nested names only. Two runs of
    /// the same job must produce equal signatures regardless of pool width
    /// or which worker executed them — the span-determinism tests compare
    /// exactly this.
    pub fn signature(&self) -> String {
        let mut out = String::new();
        self.write_signature(&mut out);
        out
    }

    fn write_signature(&self, out: &mut String) {
        out.push_str(&self.name);
        if !self.children.is_empty() {
            out.push('(');
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                c.write_signature(out);
            }
            out.push(')');
        }
    }
}

impl ToJson for SpanNode {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", self.name.to_json()),
            ("start_us", self.start_us.to_json()),
            ("dur_us", self.dur_us.to_json()),
        ];
        if !self.children.is_empty() {
            fields.push((
                "children",
                Json::Array(self.children.iter().map(ToJson::to_json).collect()),
            ));
        }
        Json::obj(fields)
    }
}

/// Parse a span tree back from its wire form ([`SpanNode::to_json`]
/// inverse). `None` on any missing or mistyped field.
pub fn parse_span(j: &Json) -> Option<SpanNode> {
    let name = j.get("name")?.as_str()?.to_string();
    let start_us = j.get("start_us")?.as_u64()?;
    let dur_us = j.get("dur_us")?.as_u64()?;
    let children = match j.get("children") {
        None => Vec::new(),
        Some(c) => c
            .as_array()?
            .iter()
            .map(parse_span)
            .collect::<Option<Vec<_>>>()?,
    };
    Some(SpanNode {
        name,
        start_us,
        dur_us,
        children,
    })
}

/// An open (not yet closed) span frame on the recorder stack.
struct Frame {
    name: String,
    start_us: u64,
    children: Vec<SpanNode>,
}

/// Per-thread span recorder for one job. The stack holds the chain of
/// currently-open frames; closing a frame folds it into its parent's
/// children. Index 0 is the synthetic `job` root.
pub(crate) struct Recorder {
    #[allow(dead_code)]
    trace_id: u64,
    stack: Vec<Frame>,
}

impl Recorder {
    pub(crate) fn new(trace_id: u64, start_us: u64) -> Recorder {
        Recorder {
            trace_id,
            stack: vec![Frame {
                name: "job".to_string(),
                start_us,
                children: Vec::new(),
            }],
        }
    }

    fn enter(&mut self, name: &str, now_us: u64) {
        self.stack.push(Frame {
            name: name.to_string(),
            start_us: now_us,
            children: Vec::new(),
        });
    }

    fn exit(&mut self, now_us: u64) {
        // Never pop the root: a stray exit (hook imbalance) is dropped
        // rather than corrupting the tree.
        if self.stack.len() <= 1 {
            return;
        }
        let frame = self.stack.pop().expect("len checked above");
        let node = SpanNode {
            name: frame.name,
            start_us: frame.start_us,
            dur_us: now_us.saturating_sub(frame.start_us),
            children: frame.children,
        };
        self.stack
            .last_mut()
            .expect("root always present")
            .children
            .push(node);
    }

    pub(crate) fn attach(&mut self, name: &str, start_us: u64, dur_us: u64) {
        self.stack
            .last_mut()
            .expect("root always present")
            .children
            .push(SpanNode {
                name: name.to_string(),
                start_us,
                dur_us,
                children: Vec::new(),
            });
    }

    /// Close every still-open frame (a panicked job unwinds past its
    /// scopes) and return the finished tree.
    pub(crate) fn finish(mut self, now_us: u64) -> SpanNode {
        while self.stack.len() > 1 {
            self.exit(now_us);
        }
        let root = self.stack.pop().expect("root always present");
        SpanNode {
            name: root.name,
            start_us: root.start_us,
            dur_us: now_us.saturating_sub(root.start_us),
            children: root.children,
        }
    }
}

/// RAII guard for one nested span: created by [`enter`](SpanScope::enter),
/// closes the span on drop. While disarmed — or on a thread with no active
/// job — construction is one relaxed atomic load and drop is free.
pub struct SpanScope {
    live: bool,
}

impl SpanScope {
    pub fn enter(name: &str) -> SpanScope {
        SpanScope {
            live: recorder_enter(name),
        }
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        if self.live {
            recorder_exit();
        }
    }
}

/// Push a frame onto the current thread's recorder, if one is active.
/// Returns whether a frame was actually opened (so the matching exit can
/// be skipped when it wasn't).
fn recorder_enter(name: &str) -> bool {
    if !crate::armed() {
        return false;
    }
    let now = crate::now_us();
    crate::RECORDER.with(|r| match r.borrow_mut().as_mut() {
        Some(rec) => {
            rec.enter(name, now);
            true
        }
        None => false,
    })
}

fn recorder_exit() {
    let now = crate::now_us();
    crate::RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.exit(now);
        }
    });
}

/// [`repro_util::metrics::set_span_hook`] entry half: piggybacks every
/// `metrics::time(...)` call site (compile stages, launch, cache tiers)
/// onto the current job's span tree. Returns whether a frame opened, so
/// the metrics layer knows whether to call [`hook_exit`].
pub(crate) fn hook_enter(name: &str) -> bool {
    recorder_enter(name)
}

/// Exit half of the metrics span hook.
pub(crate) fn hook_exit() {
    recorder_exit();
}
