//! Bounded structured event ring: service-level happenings (admissions,
//! sheds, retries, drains, cache degradations) kept in memory until an
//! operator flushes them with `{"cmd":"events"}`.
//!
//! The ring is deliberately small and lossy-at-the-tail: under a burst it
//! keeps the newest [`EVENT_RING_CAPACITY`] events and counts what it
//! dropped, so the service's memory stays bounded no matter how noisy a
//! chaos run gets.

use std::collections::VecDeque;

/// Maximum events held between drains; older entries are dropped (and
/// counted) when the ring is full.
pub const EVENT_RING_CAPACITY: usize = 256;

/// One recorded service event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotonic sequence number (process-wide, never reset) — gaps after
    /// a drop tell the reader exactly how much history is missing.
    pub seq: u64,
    /// Microseconds since the process [`epoch`](crate::epoch).
    pub t_us: u64,
    /// Short machine-readable kind: `admit`, `shed`, `retry`, `drain`,
    /// `cache_degraded`, ...
    pub kind: String,
    /// Free-form human detail (job label, error class, ...).
    pub detail: String,
}

pub(crate) struct Ring {
    buf: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

impl Ring {
    pub(crate) fn new() -> Ring {
        Ring {
            buf: VecDeque::with_capacity(EVENT_RING_CAPACITY),
            next_seq: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, kind: &str, detail: &str, t_us: u64) {
        if self.buf.len() == EVENT_RING_CAPACITY {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event {
            seq: self.next_seq,
            t_us,
            kind: kind.to_string(),
            detail: detail.to_string(),
        });
        self.next_seq += 1;
    }

    fn drain(&mut self) -> (Vec<Event>, u64) {
        let evs = self.buf.drain(..).collect();
        let dropped = std::mem::take(&mut self.dropped);
        (evs, dropped)
    }
}

/// Record one service event. One relaxed atomic load while disarmed.
pub fn event(kind: &str, detail: &str) {
    if !crate::armed() {
        return;
    }
    let t_us = crate::now_us();
    let mut ring = crate::ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.push(kind, detail, t_us);
}

/// Flush the ring: all buffered events (oldest first) plus how many were
/// dropped since the previous drain.
pub fn drain_events() -> (Vec<Event>, u64) {
    let mut ring = crate::ring().lock().unwrap_or_else(|e| e.into_inner());
    ring.drain()
}
