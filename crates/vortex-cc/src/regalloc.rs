//! Linear-scan register allocation over the non-SSA virtual registers.
//!
//! Intervals are conservative: a register's interval spans from its first
//! definition/use (or the start of the first block where it is live-in) to
//! its last use (or the end of the last block where it is live-out).
//! Registers that do not fit in the physical pools are spilled to
//! lane-interleaved stack slots and reloaded into scratch registers at each
//! use by the emitter.

use ocl_ir::cfg::Cfg;
use ocl_ir::liveness::Liveness;
use ocl_ir::{Function, Operand, Scalar, Type, VReg};

/// Where a virtual register lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Physical integer register.
    Int(vortex_isa::Reg),
    /// Physical float register.
    Fp(vortex_isa::Reg),
    /// Spill slot index (int class).
    SpillInt(usize),
    /// Spill slot index (fp class).
    SpillFp(usize),
}

impl Loc {
    pub fn is_spill(self) -> bool {
        matches!(self, Loc::SpillInt(_) | Loc::SpillFp(_))
    }
}

/// Allocation result.
#[derive(Debug)]
pub struct Allocation {
    pub locs: Vec<Loc>,
    pub spill_slots: usize,
}

/// Register class of an IR register.
fn is_fp(f: &Function, v: VReg) -> bool {
    matches!(f.vreg_type(v), Type::Scalar(Scalar::F32))
}

/// Allocatable integer registers: x8..=x27 (x3/x4/x28..x31 are reserved for
/// the scheduler and codegen scratch, x5..x7 are the short-lived scratch
/// trio).
pub const INT_POOL: std::ops::RangeInclusive<u8> = 8..=27;
/// Allocatable float registers: f0..=f29 (f30/f31 are scratch).
pub const FP_POOL: std::ops::RangeInclusive<u8> = 0..=29;

/// Run linear scan for `f`.
pub fn allocate(f: &Function) -> Allocation {
    let cfg = Cfg::new(f);
    let lv = Liveness::compute(f, &cfg);
    let n = f.num_vregs();

    // Linearize: position of each instruction; block b spans
    // [block_start[b], block_end[b]).
    let mut pos = 0usize;
    let mut block_range = vec![(0usize, 0usize); f.blocks.len()];
    for (bi, b) in f.blocks.iter().enumerate() {
        let start = pos;
        pos += b.insts.len() + 1; // +1 for the terminator
        block_range[bi] = (start, pos);
    }

    let mut start = vec![usize::MAX; n];
    let mut end = vec![0usize; n];
    let touch = |v: VReg, p: usize, start: &mut [usize], end: &mut [usize]| {
        start[v.index()] = start[v.index()].min(p);
        end[v.index()] = end[v.index()].max(p + 1);
    };
    // Parameters are loaded once in the emitter's prologue, *outside* the
    // per-item loop that wraps the body, so their registers must survive the
    // whole kernel: pin their intervals to the full function.
    for i in 0..f.params.len() {
        touch(VReg(i as u32), 0, &mut start, &mut end);
        touch(VReg(i as u32), pos.saturating_sub(1), &mut start, &mut end);
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        let (bs, be) = block_range[bi];
        for v in lv.live_in[bi].iter() {
            touch(v, bs, &mut start, &mut end);
        }
        for v in lv.live_out[bi].iter() {
            touch(v, be - 1, &mut start, &mut end);
        }
        let mut p = bs;
        for inst in &b.insts {
            inst.op.for_each_operand(|o| {
                if let Operand::Reg(v) = o {
                    touch(v, p, &mut start, &mut end);
                }
            });
            if let Some(v) = inst.result {
                touch(v, p, &mut start, &mut end);
            }
            p += 1;
        }
        if let ocl_ir::Terminator::CondBr {
            cond: Operand::Reg(v),
            ..
        } = &b.term
        {
            touch(*v, p, &mut start, &mut end);
        }
    }

    // Sort live vregs by interval start.
    let mut order: Vec<VReg> = (0..n as u32)
        .map(VReg)
        .filter(|v| start[v.index()] != usize::MAX)
        .collect();
    order.sort_by_key(|v| start[v.index()]);

    let mut locs = vec![Loc::SpillInt(usize::MAX); n];
    let mut spill_slots = 0usize;
    // Independent passes for the two register classes.
    for fp in [false, true] {
        let pool: Vec<u8> = if fp {
            FP_POOL.collect()
        } else {
            INT_POOL.collect()
        };
        let mut free = pool;
        // Active: (end, vreg, phys).
        let mut active: Vec<(usize, VReg, u8)> = Vec::new();
        for &v in order.iter().filter(|&&v| is_fp(f, v) == fp) {
            let s = start[v.index()];
            // Expire.
            active.retain(|&(e, _, phys)| {
                if e <= s {
                    free.push(phys);
                    false
                } else {
                    true
                }
            });
            if let Some(phys) = free.pop() {
                locs[v.index()] = if fp { Loc::Fp(phys) } else { Loc::Int(phys) };
                active.push((end[v.index()], v, phys));
            } else {
                // Spill the interval with the furthest end.
                let (far_i, &(far_end, far_v, far_phys)) = active
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, (e, _, _))| *e)
                    .expect("active nonempty when pool exhausted");
                if far_end > end[v.index()] {
                    // Steal the register; spill the far interval.
                    locs[far_v.index()] = if fp {
                        Loc::SpillFp(spill_slots)
                    } else {
                        Loc::SpillInt(spill_slots)
                    };
                    spill_slots += 1;
                    locs[v.index()] = if fp {
                        Loc::Fp(far_phys)
                    } else {
                        Loc::Int(far_phys)
                    };
                    active[far_i] = (end[v.index()], v, far_phys);
                } else {
                    locs[v.index()] = if fp {
                        Loc::SpillFp(spill_slots)
                    } else {
                        Loc::SpillInt(spill_slots)
                    };
                    spill_slots += 1;
                }
            }
        }
    }
    // Dead registers (never touched): park them in a shared dummy slot-less
    // int register location; they are never read or written.
    for l in &mut locs {
        if *l == Loc::SpillInt(usize::MAX) {
            *l = Loc::Int(*INT_POOL.start());
        }
    }
    Allocation { locs, spill_slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocl_ir::{AddressSpace, BinOp, Builtin, FunctionBuilder, Param};

    fn gptr() -> Param {
        Param {
            name: "p".into(),
            ty: Type::Ptr(AddressSpace::Global),
        }
    }

    #[test]
    fn small_kernel_fits_in_registers() {
        let mut b = FunctionBuilder::new("k", vec![gptr()]);
        let gid = b.workitem(Builtin::GlobalId(0));
        let p = b.gep(
            Operand::Reg(b.param(0)),
            gid.into(),
            4,
            AddressSpace::Global,
        );
        let v = b.load(p.into(), Scalar::F32, AddressSpace::Global);
        let w = b.bin(BinOp::Add, Scalar::F32, v.into(), v.into());
        b.store(p.into(), w.into(), Scalar::F32, AddressSpace::Global);
        b.ret();
        let f = b.finish();
        let a = allocate(&f);
        assert_eq!(a.spill_slots, 0);
        // Float values in fp regs, the rest in int regs.
        assert!(matches!(a.locs[v.index()], Loc::Fp(_)));
        assert!(matches!(a.locs[w.index()], Loc::Fp(_)));
        assert!(matches!(a.locs[gid.index()], Loc::Int(_)));
    }

    #[test]
    fn no_two_live_vregs_share_a_register() {
        // Chain of adds keeping many values live simultaneously.
        let mut b = FunctionBuilder::new("k", vec![gptr()]);
        let vals: Vec<_> = (0..10)
            .map(|i| b.mov(Scalar::I32, Operand::imm_i32(i)))
            .collect();
        // Sum them so they are all live until the end.
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.bin(BinOp::Add, Scalar::I32, acc.into(), v.into());
        }
        let addr = b.gep(
            Operand::Reg(b.param(0)),
            acc.into(),
            4,
            AddressSpace::Global,
        );
        b.store(addr.into(), acc.into(), Scalar::I32, AddressSpace::Global);
        b.ret();
        let f = b.finish();
        let a = allocate(&f);
        // vals[1..] are all live at the first add; ensure distinct regs.
        let mut seen = std::collections::HashSet::new();
        for &v in &vals[1..] {
            if let Loc::Int(r) = a.locs[v.index()] {
                assert!(seen.insert(r), "register x{r} double-booked");
            }
        }
    }

    #[test]
    fn pressure_forces_spills() {
        // More simultaneously-live ints than the pool holds.
        let mut b = FunctionBuilder::new("k", vec![gptr()]);
        let n_pool = INT_POOL.count();
        let vals: Vec<_> = (0..(n_pool + 5) as i32)
            .map(|i| b.mov(Scalar::I32, Operand::imm_i32(i)))
            .collect();
        let mut acc = b.mov(Scalar::I32, Operand::imm_i32(0));
        for &v in &vals {
            acc = b.bin(BinOp::Add, Scalar::I32, acc.into(), v.into());
        }
        let addr = b.gep(
            Operand::Reg(b.param(0)),
            acc.into(),
            4,
            AddressSpace::Global,
        );
        b.store(addr.into(), acc.into(), Scalar::I32, AddressSpace::Global);
        b.ret();
        let f = b.finish();
        let a = allocate(&f);
        assert!(a.spill_slots > 0, "expected spills under pressure");
    }

    #[test]
    fn fp_and_int_pools_are_independent() {
        let mut b = FunctionBuilder::new("k", vec![gptr()]);
        let i = b.mov(Scalar::I32, Operand::imm_i32(1));
        let x = b.mov(Scalar::F32, Operand::imm_f32(1.0));
        let s = b.bin(BinOp::Add, Scalar::F32, x.into(), x.into());
        let addr = b.gep(Operand::Reg(b.param(0)), i.into(), 4, AddressSpace::Global);
        b.store(addr.into(), s.into(), Scalar::F32, AddressSpace::Global);
        b.ret();
        let f = b.finish();
        let a = allocate(&f);
        assert!(matches!(a.locs[i.index()], Loc::Int(_)));
        assert!(matches!(a.locs[x.index()], Loc::Fp(_)));
    }
}
