//! Control-flow structure analysis for SIMT lowering.
//!
//! Classifies every divergent branch as either a structured if/else (lowered
//! with SPLIT/JOIN) or a divergent loop exit (lowered with PRED + a mask
//! save in the loop preheader), and rejects shapes outside the supported
//! subset with a source-level error.

use ocl_ir::cfg::{Cfg, Dominators, PostDominators};
use ocl_ir::divergence::DivergenceInfo;
use ocl_ir::{BlockId, Function, Terminator};
use rustc_hash::FxHashMap;

/// How one divergent branch is lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum DivBranch {
    /// SPLIT/JOIN: `reconv` is the immediate post-dominator.
    IfElse { reconv: BlockId },
    /// PRED: `body` stays in the loop, `exit` leaves it; the thread mask is
    /// saved in `preheader`.
    LoopExit {
        body: BlockId,
        exit: BlockId,
        preheader: BlockId,
    },
}

/// The full lowering plan for one kernel.
#[derive(Debug, Default)]
pub struct DivPlan {
    /// Per divergent-branch block: its lowering.
    pub branches: FxHashMap<BlockId, DivBranch>,
    /// Edges (from, to) that must execute a JOIN instead of a jump, keyed to
    /// their reconvergence target.
    pub join_edges: FxHashMap<(BlockId, BlockId), BlockId>,
    /// Preheader block -> mask-slot indices to save there.
    pub mask_saves: FxHashMap<BlockId, Vec<usize>>,
    /// Loop-header block -> mask-slot index its PRED reloads.
    pub pred_slots: FxHashMap<BlockId, usize>,
    /// Total mask slots needed.
    pub num_mask_slots: usize,
}

/// Natural loops of the function.
#[derive(Debug)]
pub struct Loops {
    /// For each block, the header of its innermost loop (if any).
    pub innermost: Vec<Option<BlockId>>,
    /// Header -> loop body (bool per block).
    pub bodies: FxHashMap<BlockId, Vec<bool>>,
}

/// Find natural loops via back edges (edge u->h where h dominates u).
pub fn find_loops(f: &Function, cfg: &Cfg, dom: &Dominators) -> Loops {
    let n = f.blocks.len();
    let mut bodies: FxHashMap<BlockId, Vec<bool>> = FxHashMap::default();
    for (u, _) in f.iter_blocks() {
        if !cfg.is_reachable(u) {
            continue;
        }
        for &h in &cfg.succs[u.index()] {
            if dom.dominates(h, u) {
                // Natural loop of back edge u->h.
                let body = bodies.entry(h).or_insert_with(|| vec![false; n]);
                body[h.index()] = true;
                let mut work = vec![u];
                while let Some(x) = work.pop() {
                    if body[x.index()] {
                        continue;
                    }
                    body[x.index()] = true;
                    work.extend(cfg.preds[x.index()].iter().copied());
                }
            }
        }
    }
    // Innermost loop per block = smallest containing body.
    let mut innermost: Vec<Option<BlockId>> = vec![None; n];
    for (h, body) in &bodies {
        let size = body.iter().filter(|&&b| b).count();
        for (bi, &inb) in body.iter().enumerate() {
            if !inb {
                continue;
            }
            let better = match innermost[bi] {
                None => true,
                Some(cur) => {
                    let cur_size = bodies[&cur].iter().filter(|&&b| b).count();
                    size < cur_size
                }
            };
            if better {
                innermost[bi] = Some(*h);
            }
        }
    }
    Loops { innermost, bodies }
}

/// Build the lowering plan, or reject the kernel.
pub fn plan(f: &Function, cfg: &Cfg, div: &DivergenceInfo) -> Result<DivPlan, crate::CodegenError> {
    let dom = Dominators::new(cfg);
    let pdom = PostDominators::new(f, cfg);
    let loops = find_loops(f, cfg, &dom);
    let mut plan = DivPlan::default();
    let err = |detail: String| crate::CodegenError::Unstructured {
        kernel: f.name.clone(),
        detail,
    };
    for (b, block) in f.iter_blocks() {
        if !cfg.is_reachable(b) || !div.is_divergent_branch(b) {
            continue;
        }
        let Terminator::CondBr {
            then_bb, else_bb, ..
        } = block.term
        else {
            continue;
        };
        // Loop-exit shape: B is in a loop and exactly one successor leaves
        // that loop.
        if let Some(h) = loops.innermost[b.index()] {
            let body_set = &loops.bodies[&h];
            let then_in = body_set[then_bb.index()];
            let else_in = body_set[else_bb.index()];
            if then_in != else_in {
                let (body, exit) = if then_in {
                    (then_bb, else_bb)
                } else {
                    (else_bb, then_bb)
                };
                // Every edge out of the loop must be this one.
                for (x, xb) in f.iter_blocks() {
                    if !body_set[x.index()] || !cfg.is_reachable(x) {
                        continue;
                    }
                    for s in xb.term.successors() {
                        if !body_set[s.index()] && (x != b || s != exit) {
                            return Err(err(format!(
                                "loop with header {h} has a second exit {x}->{s} \
                                 (divergent break?); rewrite with a guard flag"
                            )));
                        }
                    }
                }
                // Unique preheader.
                let preheaders: Vec<BlockId> = cfg.preds[h.index()]
                    .iter()
                    .copied()
                    .filter(|p| !body_set[p.index()])
                    .collect();
                let &[preheader] = preheaders.as_slice() else {
                    return Err(err(format!(
                        "divergent loop at {h} needs a unique preheader, found {}",
                        preheaders.len()
                    )));
                };
                let slot = plan.num_mask_slots;
                plan.num_mask_slots += 1;
                plan.mask_saves.entry(preheader).or_default().push(slot);
                plan.pred_slots.insert(b, slot);
                plan.branches.insert(
                    b,
                    DivBranch::LoopExit {
                        body,
                        exit,
                        preheader,
                    },
                );
                continue;
            }
        }
        // If/else shape: reconvergence at the immediate post-dominator.
        let Some(reconv) = pdom.ipdom(b) else {
            return Err(err(format!(
                "divergent branch at {b} has no reconvergence point \
                 (divergent return?); guard the body with an if instead"
            )));
        };
        let then_region = region_of(cfg, then_bb, reconv);
        let else_region = if else_bb == reconv {
            vec![false; f.blocks.len()]
        } else {
            region_of(cfg, else_bb, reconv)
        };
        // Structural checks.
        for (x, xb) in f.iter_blocks() {
            let in_then = then_region[x.index()];
            let in_else = else_region[x.index()];
            if in_then && in_else {
                return Err(err(format!(
                    "then/else regions of divergent branch {b} share block {x}"
                )));
            }
            if !(in_then || in_else) {
                continue;
            }
            if matches!(xb.term, Terminator::Ret) {
                return Err(err(format!(
                    "return under divergent branch {b} (block {x}); \
                     guard the kernel body with an if instead"
                )));
            }
            for s in xb.term.successors() {
                let ok = s == reconv || then_region[s.index()] || else_region[s.index()];
                if !ok {
                    return Err(err(format!(
                        "edge {x}->{s} escapes the divergent region of {b} \
                         (divergent break/continue?); rewrite with a guard flag"
                    )));
                }
                if s == reconv {
                    plan.join_edges.insert((x, s), reconv);
                }
            }
        }
        if then_bb == reconv {
            // Handled by the emitter with a synthesized join stub.
        }
        plan.branches.insert(b, DivBranch::IfElse { reconv });
    }
    Ok(plan)
}

/// Blocks reachable from `entry` without passing through `stop`.
fn region_of(cfg: &Cfg, entry: BlockId, stop: BlockId) -> Vec<bool> {
    let n = cfg.succs.len();
    let mut seen = vec![false; n];
    if entry == stop {
        return seen;
    }
    let mut work = vec![entry];
    while let Some(x) = work.pop() {
        if x == stop || seen[x.index()] {
            continue;
        }
        seen[x.index()] = true;
        work.extend(cfg.succs[x.index()].iter().copied());
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocl_ir::divergence::DivergenceInfo;
    use ocl_ir::{AddressSpace, Builtin, CmpOp, FunctionBuilder, Operand, Param, Scalar, Type};

    fn analyze(f: &Function) -> Result<DivPlan, crate::CodegenError> {
        let cfg = Cfg::new(f);
        let div = DivergenceInfo::analyze(f);
        plan(f, &cfg, &div)
    }

    #[test]
    fn divergent_if_is_ifelse_plan() {
        let src = r#"
            __kernel void k(__global int* o) {
                int i = get_global_id(0);
                if (i < 4) { o[i] = 1; } else { o[i] = 2; }
            }
        "#;
        let m = ocl_front::compile(src).unwrap();
        let p = analyze(&m.kernels[0]).unwrap();
        assert_eq!(p.branches.len(), 1);
        assert!(p
            .branches
            .values()
            .all(|b| matches!(b, DivBranch::IfElse { .. })));
        assert!(!p.join_edges.is_empty());
    }

    #[test]
    fn divergent_loop_is_pred_plan() {
        let src = r#"
            __kernel void k(__global int* o) {
                int i = get_global_id(0);
                int acc = 0;
                for (int j = 0; j < i; j++) acc += j;
                o[i] = acc;
            }
        "#;
        let m = ocl_front::compile(src).unwrap();
        let p = analyze(&m.kernels[0]).unwrap();
        assert!(
            p.branches
                .values()
                .any(|b| matches!(b, DivBranch::LoopExit { .. })),
            "plan: {:?}",
            p.branches
        );
        assert_eq!(p.num_mask_slots, 1);
        assert_eq!(p.mask_saves.len(), 1);
    }

    #[test]
    fn divergent_break_rejected() {
        let src = r#"
            __kernel void k(__global int* o) {
                int i = get_global_id(0);
                int acc = 0;
                for (int j = 0; j < 10; j++) {
                    if (j > i) break;
                    acc += j;
                }
                o[i] = acc;
            }
        "#;
        let m = ocl_front::compile(src).unwrap();
        let e = analyze(&m.kernels[0]).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("divergent"), "{msg}");
    }

    #[test]
    fn uniform_control_flow_needs_no_plan() {
        let src = r#"
            __kernel void k(__global int* o, int n) {
                int acc = 0;
                for (int j = 0; j < n; j++) {
                    if (j % 2 == 0) acc += j; else acc -= 1;
                }
                o[get_global_id(0)] = acc;
            }
        "#;
        let m = ocl_front::compile(src).unwrap();
        let p = analyze(&m.kernels[0]).unwrap();
        assert!(p.branches.is_empty(), "{:?}", p.branches);
    }

    #[test]
    fn nested_divergent_ifs_get_distinct_reconv() {
        let src = r#"
            __kernel void k(__global int* o) {
                int i = get_global_id(0);
                int v = 0;
                if (i < 8) {
                    if (i < 4) v = 1; else v = 2;
                }
                o[i] = v;
            }
        "#;
        let m = ocl_front::compile(src).unwrap();
        let p = analyze(&m.kernels[0]).unwrap();
        assert_eq!(p.branches.len(), 2);
        let reconvs: Vec<_> = p
            .branches
            .values()
            .map(|b| match b {
                DivBranch::IfElse { reconv } => *reconv,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_ne!(reconvs[0], reconvs[1]);
    }

    #[test]
    fn loop_detection_on_hand_built_cfg() {
        // entry -> head; head -> {body, exit}; body -> head.
        let mut b = FunctionBuilder::new(
            "k",
            vec![Param {
                name: "p".into(),
                ty: Type::Ptr(AddressSpace::Global),
            }],
        );
        let gid = b.workitem(Builtin::GlobalId(0));
        let i = b.mov(Scalar::U32, Operand::imm_u32(0));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(head);
        b.switch_to(head);
        let c = b.cmp(CmpOp::Lt, Scalar::U32, i.into(), gid.into());
        b.cond_br(c.into(), body, exit);
        b.switch_to(body);
        let i2 = b.bin(
            ocl_ir::BinOp::Add,
            Scalar::U32,
            i.into(),
            Operand::imm_u32(1),
        );
        b.assign(i, Scalar::U32, i2.into());
        b.br(head);
        b.switch_to(exit);
        b.ret();
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        let loops = find_loops(&f, &cfg, &dom);
        assert_eq!(loops.innermost[head.index()], Some(head));
        assert_eq!(loops.innermost[body.index()], Some(head));
        assert_eq!(loops.innermost[exit.index()], None);
        assert_eq!(loops.innermost[0], None);
    }
}
