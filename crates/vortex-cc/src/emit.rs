//! Instruction selection and scheduler emission.

use crate::regalloc::{allocate, Allocation, Loc};
use crate::structure::{plan, DivBranch, DivPlan};
use crate::{CodegenError, CodegenOpts, CompiledKernel};
use ocl_ir::cfg::Cfg;
use ocl_ir::divergence::DivergenceInfo;
use ocl_ir::{
    AtomicOp, BinOp, BlockId, Builtin, CmpOp, Function, LocalArrayId, Op, Operand, Scalar,
    Terminator, UnOp, VReg,
};

use vortex_isa::layout::{self, arg, LOCAL_BASE, PRINTF_BASE, PRINTF_STRIDE};
use vortex_isa::{
    abi, AluOp, AmoOp, Asm, BranchCond, Csr, CvtOp, FpCmpOp, FpOp, FpUnOp, Instr, Label, MulOp,
    PrintArg, PrintfFmt, Program, Reg,
};

// Register conventions (see `regalloc` for the allocatable pools).
const SP: Reg = abi::SP;
const T0: Reg = abi::T0;
const T1: Reg = abi::T1;
const T2: Reg = abi::T2;
/// Extra codegen scratch (free outside the prologue).
const S0: Reg = 30;
const S1: Reg = 31;
/// Scheduler state: current item / group index.
const X_IDX: Reg = 3;
/// Scheduler state: stride (total harts or core count).
const X_STRIDE: Reg = 4;
/// Scheduler state: loop limit (total items or groups).
const X_LIMIT: Reg = 28;
/// Base of the kernel-argument block (constant ARG_BASE).
const X_ARG: Reg = 29;
/// Float scratch.
const FT0: Reg = 30;
const FT1: Reg = 31;

/// Stack slot indices: 9 work-item id slots, then mask slots, then spills.
const SLOT_GID: usize = 0;
const SLOT_LID: usize = 3;
const SLOT_GRP: usize = 6;
const NUM_ID_SLOTS: usize = 9;

/// Which work-item ids the kernel body reads.
#[derive(Default, Clone, Copy)]
struct UsedIds {
    gid: [bool; 3],
    lid: [bool; 3],
    grp: [bool; 3],
}

struct Emitter<'f> {
    f: &'f Function,
    a: Asm,
    alloc: Allocation,
    plan: DivPlan,
    opts: CodegenOpts,
    block_labels: Vec<Label>,
    item_done: Label,
    printf_table: Vec<PrintfFmt>,
    used: UsedIds,
    num_mask_slots: usize,
}

/// Compile a kernel to a program (see crate docs for the two scheduler
/// shapes).
pub fn compile(f: &Function, opts: &CodegenOpts) -> Result<CompiledKernel, CodegenError> {
    let cfg = Cfg::new(f);
    let div = DivergenceInfo::analyze(f);
    let plan = plan(f, &cfg, &div)?;
    let alloc = repro_util::metrics::time("vortex_cc.regalloc", || allocate(f));
    let group_mode = f.uses_barrier() || !f.local_arrays.is_empty();
    let used = scan_used_ids(f);
    let num_mask_slots = plan.num_mask_slots;
    let divergent_branches = plan.branches.len();
    let spill_slots = alloc.spill_slots;

    let mut e = Emitter {
        f,
        a: Asm::new(),
        alloc,
        plan,
        opts: *opts,
        block_labels: Vec::new(),
        item_done: Label(0), // replaced below
        printf_table: Vec::new(),
        used,
        num_mask_slots,
    };
    e.block_labels = (0..f.blocks.len()).map(|_| e.a.label()).collect();
    e.item_done = e.a.label();

    let finish = e.a.label();
    e.emit_prologue_common();
    if group_mode {
        e.emit_group_scheduler(finish)?;
    } else {
        e.emit_stride_scheduler(finish)?;
    }
    e.a.bind(finish);
    e.a.emit(Instr::Tmc { rs1: abi::ZERO });

    let slot_count = NUM_ID_SLOTS + num_mask_slots + spill_slots;
    let warp_stack_bytes = (slot_count as u32 * 4 * opts.threads).next_multiple_of(64);

    let instrs =
        e.a.finish()
            .map_err(|er| CodegenError::Limit(er.to_string()))?;
    Ok(CompiledKernel {
        program: Program {
            instrs,
            printf_table: e.printf_table,
            entry: 0,
        },
        name: f.name.clone(),
        num_args: f.params.len(),
        group_mode,
        local_bytes: f.local_bytes(),
        warp_stack_bytes,
        divergent_branches,
        spill_slots,
        threads: opts.threads,
    })
}

fn scan_used_ids(f: &Function) -> UsedIds {
    let mut u = UsedIds::default();
    for b in &f.blocks {
        for i in &b.insts {
            if let Op::WorkItem(w) = &i.op {
                match w {
                    Builtin::GlobalId(d) => u.gid[*d as usize] = true,
                    Builtin::LocalId(d) => u.lid[*d as usize] = true,
                    Builtin::GroupId(d) => u.grp[*d as usize] = true,
                    _ => {}
                }
            }
        }
    }
    u
}

impl<'f> Emitter<'f> {
    // ---- small emission helpers ---------------------------------------

    fn li(&mut self, rd: Reg, v: i32) {
        if (-2048..2048).contains(&v) {
            self.a.emit(Instr::OpImm {
                op: AluOp::Add,
                rd,
                rs1: abi::ZERO,
                imm: v,
            });
        } else {
            // lui + addi with carry correction for negative low parts.
            let low = (v << 20) >> 20;
            let high = (v.wrapping_sub(low) >> 12) & 0xFFFFF;
            self.a.emit(Instr::Lui { rd, imm: high });
            if low != 0 {
                self.a.emit(Instr::OpImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: low,
                });
            }
        }
    }

    fn mv(&mut self, rd: Reg, rs: Reg) {
        if rd != rs {
            self.a.emit(Instr::OpImm {
                op: AluOp::Add,
                rd,
                rs1: rs,
                imm: 0,
            });
        }
    }

    fn fmv(&mut self, rd: Reg, rs: Reg) {
        if rd != rs {
            self.a.emit(Instr::FpOp {
                op: FpOp::Sgnj,
                rd,
                rs1: rs,
                rs2: rs,
            });
        }
    }

    /// Byte offset of stack slot `k` (lane-interleaved by `threads`).
    fn slot_off(&self, k: usize) -> Result<i32, CodegenError> {
        let off = (k as u32 * 4 * self.opts.threads) as i32;
        if off >= 2048 {
            return Err(CodegenError::Limit(format!(
                "stack slot offset {off} exceeds the 12-bit immediate \
                 (too many spills for {} threads/warp)",
                self.opts.threads
            )));
        }
        Ok(off)
    }

    fn load_slot(&mut self, rd: Reg, k: usize) -> Result<(), CodegenError> {
        let imm = self.slot_off(k)?;
        self.a.emit(Instr::Lw { rd, rs1: SP, imm });
        Ok(())
    }

    fn store_slot(&mut self, rs: Reg, k: usize) -> Result<(), CodegenError> {
        let imm = self.slot_off(k)?;
        self.a.emit(Instr::Sw {
            rs1: SP,
            rs2: rs,
            imm,
        });
        Ok(())
    }

    fn fload_slot(&mut self, rd: Reg, k: usize) -> Result<(), CodegenError> {
        let imm = self.slot_off(k)?;
        self.a.emit(Instr::Flw { rd, rs1: SP, imm });
        Ok(())
    }

    fn fstore_slot(&mut self, rs: Reg, k: usize) -> Result<(), CodegenError> {
        let imm = self.slot_off(k)?;
        self.a.emit(Instr::Fsw {
            rs1: SP,
            rs2: rs,
            imm,
        });
        Ok(())
    }

    fn spill_slot_index(&self, s: usize) -> usize {
        NUM_ID_SLOTS + self.num_mask_slots + s
    }

    fn mask_slot_index(&self, m: usize) -> usize {
        NUM_ID_SLOTS + m
    }

    /// Materialize an integer operand into a register; `scratch` is used for
    /// spills and constants.
    fn int_operand(&mut self, o: Operand, scratch: Reg) -> Result<Reg, CodegenError> {
        match o {
            Operand::Reg(v) => match self.alloc.locs[v.index()] {
                Loc::Int(r) => Ok(r),
                Loc::SpillInt(s) => {
                    let k = self.spill_slot_index(s);
                    self.load_slot(scratch, k)?;
                    Ok(scratch)
                }
                Loc::Fp(_) | Loc::SpillFp(_) => unreachable!("int operand in fp location"),
            },
            Operand::Const(c) => {
                self.li(scratch, c.bits() as i32);
                Ok(scratch)
            }
        }
    }

    /// Materialize a float operand into an fp register.
    fn fp_operand(
        &mut self,
        o: Operand,
        fscratch: Reg,
        iscratch: Reg,
    ) -> Result<Reg, CodegenError> {
        match o {
            Operand::Reg(v) => match self.alloc.locs[v.index()] {
                Loc::Fp(r) => Ok(r),
                Loc::SpillFp(s) => {
                    let k = self.spill_slot_index(s);
                    self.fload_slot(fscratch, k)?;
                    Ok(fscratch)
                }
                Loc::Int(_) | Loc::SpillInt(_) => unreachable!("fp operand in int location"),
            },
            Operand::Const(c) => {
                self.li(iscratch, c.bits() as i32);
                self.a.emit(Instr::FpCvt {
                    op: CvtOp::MvX2F,
                    rd: fscratch,
                    rs1: iscratch,
                });
                Ok(fscratch)
            }
        }
    }

    /// Destination register for an int-class result; returns (reg, spill).
    fn int_dest(&mut self, v: VReg) -> (Reg, Option<usize>) {
        match self.alloc.locs[v.index()] {
            Loc::Int(r) => (r, None),
            Loc::SpillInt(s) => (T2, Some(self.spill_slot_index(s))),
            _ => unreachable!("int dest in fp location"),
        }
    }

    fn fp_dest(&mut self, v: VReg) -> (Reg, Option<usize>) {
        match self.alloc.locs[v.index()] {
            Loc::Fp(r) => (r, None),
            Loc::SpillFp(s) => (FT1, Some(self.spill_slot_index(s))),
            _ => unreachable!("fp dest in int location"),
        }
    }

    fn finish_int_dest(&mut self, spill: Option<usize>, r: Reg) -> Result<(), CodegenError> {
        if let Some(k) = spill {
            self.store_slot(r, k)?;
        }
        Ok(())
    }

    fn finish_fp_dest(&mut self, spill: Option<usize>, r: Reg) -> Result<(), CodegenError> {
        if let Some(k) = spill {
            self.fstore_slot(r, k)?;
        }
        Ok(())
    }

    fn is_fp_class(&self, v: VReg) -> bool {
        matches!(self.alloc.locs[v.index()], Loc::Fp(_) | Loc::SpillFp(_))
    }

    // ---- prologue -------------------------------------------------------

    /// Mask init, warp spawn, sp computation — shared by both schedulers.
    fn emit_prologue_common(&mut self) {
        let a = &mut self.a;
        // Enable all lanes: tmc((1 << NT) - 1).
        a.emit(Instr::CsrRead {
            rd: T0,
            csr: Csr::NumThreads,
        });
        a.emit(Instr::OpImm {
            op: AluOp::Add,
            rd: T1,
            rs1: abi::ZERO,
            imm: 1,
        });
        a.emit(Instr::Op {
            op: AluOp::Sll,
            rd: T1,
            rs1: T1,
            rs2: T0,
        });
        a.emit(Instr::OpImm {
            op: AluOp::Add,
            rd: T1,
            rs1: T1,
            imm: -1,
        });
        a.emit(Instr::Tmc { rs1: T1 });
        // Warp 0 spawns the rest at pc 0.
        let after_spawn = a.label();
        a.emit(Instr::CsrRead {
            rd: T0,
            csr: Csr::WarpId,
        });
        a.branch(BranchCond::Ne, T0, abi::ZERO, after_spawn);
        a.emit(Instr::CsrRead {
            rd: T0,
            csr: Csr::NumWarps,
        });
        a.emit(Instr::Wspawn {
            rs1: T0,
            rs2: abi::ZERO,
        });
        a.bind(after_spawn);
        // x29 = ARG_BASE (0x1000).
        a.emit(Instr::Lui {
            rd: X_ARG,
            imm: (layout::ARG_BASE >> 12) as i32,
        });
        // warp_gidx = core*NW + wid.
        a.emit(Instr::CsrRead {
            rd: T0,
            csr: Csr::CoreId,
        });
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::NumWarps,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::WarpId,
        });
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::OpImm {
            op: AluOp::Add,
            rd: T0,
            rs1: T0,
            imm: 1,
        });
        // sp = stack_top - warp_gidx1 * warp_stride + tid*4.
        a.emit(Instr::Lw {
            rd: T1,
            rs1: X_ARG,
            imm: arg::STACK_STRIDE as i32,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::Lw {
            rd: T1,
            rs1: X_ARG,
            imm: arg::STACK_TOP as i32,
        });
        a.emit(Instr::Op {
            op: AluOp::Sub,
            rd: T1,
            rs1: T1,
            rs2: T0,
        });
        a.emit(Instr::CsrRead {
            rd: T2,
            csr: Csr::ThreadId,
        });
        a.emit(Instr::OpImm {
            op: AluOp::Sll,
            rd: T2,
            rs1: T2,
            imm: 2,
        });
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: SP,
            rs1: T1,
            rs2: T2,
        });
    }

    /// Load kernel arguments into their allocated locations.
    fn emit_param_loads(&mut self) -> Result<(), CodegenError> {
        for i in 0..self.f.params.len() {
            let v = VReg(i as u32);
            let imm = (arg::KERNEL_ARGS + 4 * i as u32) as i32;
            if self.is_fp_class(v) {
                let (rd, spill) = self.fp_dest(v);
                self.a.emit(Instr::Flw {
                    rd,
                    rs1: X_ARG,
                    imm,
                });
                self.finish_fp_dest(spill, rd)?;
            } else {
                let (rd, spill) = self.int_dest(v);
                self.a.emit(Instr::Lw {
                    rd,
                    rs1: X_ARG,
                    imm,
                });
                self.finish_int_dest(spill, rd)?;
            }
        }
        Ok(())
    }

    /// Warp-chunked scheduler for kernels without barriers/local memory:
    /// each warp owns a contiguous chunk of the flattened NDRange (the way
    /// the PoCL port distributes work groups onto Vortex warps), with lanes
    /// covering adjacent items so accesses coalesce within the warp. With
    /// C·W warps streaming separate windows, memory-system pressure grows
    /// with the configuration — the §III-C bottleneck behaviour.
    fn emit_stride_scheduler(&mut self, finish: Label) -> Result<(), CodegenError> {
        // x4 = T (per-iteration stride); x3 = first item; x28 = chunk end.
        let a = &mut self.a;
        a.emit(Instr::CsrRead {
            rd: X_STRIDE,
            csr: Csr::NumThreads,
        });
        // N (total items) into x28.
        a.emit(Instr::Lw {
            rd: T0,
            rs1: X_ARG,
            imm: arg::GLOBAL_X as i32,
        });
        a.emit(Instr::Lw {
            rd: T1,
            rs1: X_ARG,
            imm: arg::GLOBAL_Y as i32,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::Lw {
            rd: T1,
            rs1: X_ARG,
            imm: arg::GLOBAL_Z as i32,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: X_LIMIT,
            rs1: T0,
            rs2: T1,
        });
        // warps_total = C * NW in T0.
        a.emit(Instr::CsrRead {
            rd: T0,
            csr: Csr::NumCores,
        });
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::NumWarps,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        // chunk = ceil(ceil(N / warps_total) / T) * T into S1.
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: T1,
            rs1: X_LIMIT,
            rs2: T0,
        });
        a.emit(Instr::OpImm {
            op: AluOp::Add,
            rd: T1,
            rs1: T1,
            imm: -1,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Divu,
            rd: S1,
            rs1: T1,
            rs2: T0,
        });
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: S1,
            rs1: S1,
            rs2: X_STRIDE,
        });
        a.emit(Instr::OpImm {
            op: AluOp::Add,
            rd: S1,
            rs1: S1,
            imm: -1,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Divu,
            rd: S1,
            rs1: S1,
            rs2: X_STRIDE,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: S1,
            rs1: S1,
            rs2: X_STRIDE,
        });
        // warp_global = core * NW + wid in S0; base = warp_global * chunk.
        a.emit(Instr::CsrRead {
            rd: T0,
            csr: Csr::CoreId,
        });
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::NumWarps,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::WarpId,
        });
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: S0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: S0,
            rs1: S0,
            rs2: S1,
        });
        // x3 = base + tid.
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::ThreadId,
        });
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: X_IDX,
            rs1: S0,
            rs2: T1,
        });
        // x28 = min(base + chunk, N).
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: T1,
            rs1: S0,
            rs2: S1,
        });
        let keep_n = a.label();
        a.branch(BranchCond::Geu, T1, X_LIMIT, keep_n);
        a.emit(Instr::OpImm {
            op: AluOp::Add,
            rd: X_LIMIT,
            rs1: T1,
            imm: 0,
        });
        a.bind(keep_n);
        self.emit_param_loads()?;
        // Item loop. The whole warp iterates in lockstep: the loop bound
        // check diverges only on the ragged tail, handled with PRED.
        let item_loop = self.a.label();
        self.a.bind(item_loop);
        // live = x3 < N (per lane); save full mask once into T2 via CSR.
        self.a.emit(Instr::CsrRead {
            rd: T2,
            csr: Csr::Tmask,
        });
        self.a.emit(Instr::Op {
            op: AluOp::Sltu,
            rd: T0,
            rs1: X_IDX,
            rs2: X_LIMIT,
        });
        self.a.pred(T0, T2, finish);
        self.emit_stride_ids()?;
        self.emit_body()?;
        self.a.bind(self.item_done);
        self.a.emit(Instr::Op {
            op: AluOp::Add,
            rd: X_IDX,
            rs1: X_IDX,
            rs2: X_STRIDE,
        });
        self.a.jump(item_loop);
        Ok(())
    }

    /// Decompose the linear item index (x3) into the ids the body uses.
    fn emit_stride_ids(&mut self) -> Result<(), CodegenError> {
        let u = self.used;
        let any_hi = u.gid[1] | u.gid[2] | u.lid[1] | u.lid[2] | u.grp[1] | u.grp[2];
        let dims: &[(u32, usize)] = &[(arg::GLOBAL_X, 0), (arg::GLOBAL_Y, 1), (arg::GLOBAL_Z, 2)];
        // gid decomposition: x3 = ((gid2*gy)+gid1)*gx + gid0.
        self.mv(T0, X_IDX);
        for &(off, d) in dims {
            let need_this_gid = u.gid[d] || u.lid[d] || u.grp[d];
            let last = d == 2 || (!any_hi && d == 0);
            if need_this_gid || !last {
                self.a.emit(Instr::Lw {
                    rd: T1,
                    rs1: X_ARG,
                    imm: off as i32,
                });
            }
            if need_this_gid {
                if last {
                    self.mv(S0, T0);
                } else {
                    self.a.emit(Instr::MulDiv {
                        op: MulOp::Remu,
                        rd: S0,
                        rs1: T0,
                        rs2: T1,
                    });
                }
                self.store_slot(S0, SLOT_GID + d)?;
                // lid/group for this dim.
                if u.lid[d] || u.grp[d] {
                    self.a.emit(Instr::Lw {
                        rd: S1,
                        rs1: X_ARG,
                        imm: (arg::LOCAL_X + 4 * d as u32) as i32,
                    });
                    if u.lid[d] {
                        self.a.emit(Instr::MulDiv {
                            op: MulOp::Remu,
                            rd: T2,
                            rs1: S0,
                            rs2: S1,
                        });
                        self.store_slot(T2, SLOT_LID + d)?;
                    }
                    if u.grp[d] {
                        self.a.emit(Instr::MulDiv {
                            op: MulOp::Divu,
                            rd: T2,
                            rs1: S0,
                            rs2: S1,
                        });
                        self.store_slot(T2, SLOT_GRP + d)?;
                    }
                }
            }
            if !last {
                self.a.emit(Instr::MulDiv {
                    op: MulOp::Divu,
                    rd: T0,
                    rs1: T0,
                    rs2: T1,
                });
            }
            if !any_hi {
                break;
            }
        }
        Ok(())
    }

    /// Group-per-core scheduler for barrier / local-memory kernels.
    fn emit_group_scheduler(&mut self, finish: Label) -> Result<(), CodegenError> {
        let a = &mut self.a;
        // x4 = num cores; x3 = core id; x28 = total groups.
        a.emit(Instr::CsrRead {
            rd: X_STRIDE,
            csr: Csr::NumCores,
        });
        a.emit(Instr::CsrRead {
            rd: X_IDX,
            csr: Csr::CoreId,
        });
        a.emit(Instr::Lw {
            rd: T0,
            rs1: X_ARG,
            imm: arg::GROUPS_X as i32,
        });
        a.emit(Instr::Lw {
            rd: T1,
            rs1: X_ARG,
            imm: arg::GROUPS_Y as i32,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::Lw {
            rd: T1,
            rs1: X_ARG,
            imm: arg::GROUPS_Z as i32,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: X_LIMIT,
            rs1: T0,
            rs2: T1,
        });
        self.emit_param_loads()?;
        let group_loop = self.a.label();
        let group_done = self.a.label();
        let body_start = self.a.label();
        self.a.bind(group_loop);
        // if g >= total: finish.
        self.a.branch(BranchCond::Ltu, X_IDX, X_LIMIT, body_start);
        self.a.jump(finish);
        self.a.bind(body_start);
        // Participation: warps with wid >= barrier_warps skip the body.
        self.a.emit(Instr::Lw {
            rd: T0,
            rs1: X_ARG,
            imm: arg::BARRIER_WARPS as i32,
        });
        self.a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::WarpId,
        });
        self.a.branch(BranchCond::Geu, T1, T0, group_done);
        self.emit_group_ids()?;
        self.emit_body()?;
        self.a.bind(self.item_done);
        self.a.bind(group_done);
        self.a.emit(Instr::Op {
            op: AluOp::Add,
            rd: X_IDX,
            rs1: X_IDX,
            rs2: X_STRIDE,
        });
        self.a.jump(group_loop);
        Ok(())
    }

    /// Compute ids in group mode: x3 is the linear group index; the hart's
    /// linear local id is wid*threads + tid.
    fn emit_group_ids(&mut self) -> Result<(), CodegenError> {
        // Group coordinates from x3.
        self.mv(T0, X_IDX);
        for d in 0..3usize {
            let last = d == 2;
            self.a.emit(Instr::Lw {
                rd: T1,
                rs1: X_ARG,
                imm: (arg::GROUPS_X + 4 * d as u32) as i32,
            });
            if last {
                self.mv(S0, T0);
            } else {
                self.a.emit(Instr::MulDiv {
                    op: MulOp::Remu,
                    rd: S0,
                    rs1: T0,
                    rs2: T1,
                });
                self.a.emit(Instr::MulDiv {
                    op: MulOp::Divu,
                    rd: T0,
                    rs1: T0,
                    rs2: T1,
                });
            }
            self.store_slot(S0, SLOT_GRP + d)?;
        }
        // Linear local id L = wid*NT + tid.
        self.a.emit(Instr::CsrRead {
            rd: T0,
            csr: Csr::WarpId,
        });
        self.a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::NumThreads,
        });
        self.a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        self.a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::ThreadId,
        });
        self.a.emit(Instr::Op {
            op: AluOp::Add,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        // lid decomposition and gid = grp*local + lid, all three dims.
        for d in 0..3usize {
            let last = d == 2;
            self.a.emit(Instr::Lw {
                rd: T1,
                rs1: X_ARG,
                imm: (arg::LOCAL_X + 4 * d as u32) as i32,
            });
            if last {
                self.mv(S0, T0);
            } else {
                self.a.emit(Instr::MulDiv {
                    op: MulOp::Remu,
                    rd: S0,
                    rs1: T0,
                    rs2: T1,
                });
                self.a.emit(Instr::MulDiv {
                    op: MulOp::Divu,
                    rd: T0,
                    rs1: T0,
                    rs2: T1,
                });
            }
            self.store_slot(S0, SLOT_LID + d)?;
            // gid_d = grp_d * local_d + lid_d.
            self.load_slot(S1, SLOT_GRP + d)?;
            self.a.emit(Instr::MulDiv {
                op: MulOp::Mul,
                rd: S1,
                rs1: S1,
                rs2: T1,
            });
            self.a.emit(Instr::Op {
                op: AluOp::Add,
                rd: S1,
                rs1: S1,
                rs2: S0,
            });
            self.store_slot(S1, SLOT_GID + d)?;
        }
        Ok(())
    }

    // ---- body -----------------------------------------------------------

    fn emit_body(&mut self) -> Result<(), CodegenError> {
        for bi in 0..self.f.blocks.len() {
            let id = BlockId(bi as u32);
            self.a.bind(self.block_labels[bi]);
            for ii in 0..self.f.blocks[bi].insts.len() {
                let inst = self.f.blocks[bi].insts[ii].clone();
                self.emit_inst(&inst)?;
            }
            // Mask saves for divergent loops whose preheader is this block.
            if let Some(slots) = self.plan.mask_saves.get(&id).cloned() {
                for m in slots {
                    self.a.emit(Instr::CsrRead {
                        rd: S0,
                        csr: Csr::Tmask,
                    });
                    let k = self.mask_slot_index(m);
                    self.store_slot(S0, k)?;
                }
            }
            let term = self.f.blocks[bi].term.clone();
            self.emit_terminator(id, &term)?;
        }
        Ok(())
    }

    /// Emit a jump along CFG edge `from -> to`, emitting a JOIN when the
    /// edge re-converges a divergent region.
    fn emit_edge(&mut self, from: BlockId, to: BlockId) {
        if self.plan.join_edges.contains_key(&(from, to)) {
            self.a.join(self.block_labels[to.index()]);
        } else {
            self.a.jump(self.block_labels[to.index()]);
        }
    }

    fn emit_terminator(&mut self, id: BlockId, term: &Terminator) -> Result<(), CodegenError> {
        match term {
            Terminator::Ret => {
                self.a.jump(self.item_done);
            }
            Terminator::Br { target } => {
                self.emit_edge(id, *target);
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = self.int_operand(*cond, T0)?;
                match self.plan.branches.get(&id).cloned() {
                    None => {
                        // Uniform branch via a trampoline so label distances
                        // are unbounded.
                        let tramp = self.a.label();
                        self.a.branch(BranchCond::Ne, c, abi::ZERO, tramp);
                        self.emit_edge(id, *else_bb);
                        self.a.bind(tramp);
                        self.emit_edge(id, *then_bb);
                    }
                    Some(DivBranch::IfElse { reconv }) => {
                        // SPLIT to the else entry; taken path falls through
                        // to a jump to then.
                        let reconv_l = self.block_labels[reconv.index()];
                        let else_entry = if *else_bb == reconv {
                            // Empty else: stub that immediately rejoins.

                            self.a.label()
                        } else {
                            self.block_labels[else_bb.index()]
                        };
                        self.a.split(c, else_entry);
                        if *then_bb == reconv {
                            self.a.join(reconv_l);
                        } else {
                            self.a.jump(self.block_labels[then_bb.index()]);
                        }
                        if *else_bb == reconv {
                            self.a.bind(else_entry);
                            self.a.join(reconv_l);
                        }
                    }
                    Some(DivBranch::LoopExit { body, exit, .. }) => {
                        let slot = self.plan.pred_slots[&id];
                        let k = self.mask_slot_index(slot);
                        self.load_slot(T2, k)?;
                        // Predicate must be "stay in loop".
                        let stay = if *then_bb == body {
                            c
                        } else {
                            // Invert into T1.
                            self.a.emit(Instr::OpImm {
                                op: AluOp::Sltu,
                                rd: T1,
                                rs1: c,
                                imm: 1,
                            });
                            T1
                        };
                        self.a.pred(stay, T2, self.block_labels[exit.index()]);
                        self.a.jump(self.block_labels[body.index()]);
                    }
                }
            }
        }
        Ok(())
    }

    fn emit_inst(&mut self, inst: &ocl_ir::Inst) -> Result<(), CodegenError> {
        match &inst.op {
            Op::Bin { op, ty, a, b } => self.emit_bin(inst.result.unwrap(), *op, *ty, *a, *b),
            Op::Un { op, ty, a } => self.emit_un(inst.result.unwrap(), *op, *ty, *a),
            Op::Cmp { op, ty, a, b } => self.emit_cmp(inst.result.unwrap(), *op, *ty, *a, *b),
            Op::Select { ty, cond, a, b } => {
                self.emit_select(inst.result.unwrap(), *ty, *cond, *a, *b)
            }
            Op::Mov { a, .. } => self.emit_mov(inst.result.unwrap(), *a),
            Op::Gep {
                base,
                index,
                elem_bytes,
                ..
            } => self.emit_gep(inst.result.unwrap(), *base, *index, *elem_bytes),
            Op::Load { ptr, ty, .. } => self.emit_load(inst.result.unwrap(), *ptr, *ty),
            Op::Store { ptr, value, ty, .. } => self.emit_store(*ptr, *value, *ty),
            Op::AtomicRmw {
                op, ptr, value, ty, ..
            } => self.emit_atomic(inst.result.unwrap(), *op, *ptr, *value, *ty),
            Op::WorkItem(w) => self.emit_workitem(inst.result.unwrap(), *w),
            Op::LocalAddr(id) => self.emit_local_addr(inst.result.unwrap(), *id),
            Op::Barrier => {
                self.a.emit(Instr::Lw {
                    rd: T0,
                    rs1: X_ARG,
                    imm: arg::BARRIER_WARPS as i32,
                });
                self.a.emit(Instr::Bar {
                    rs1: abi::ZERO,
                    rs2: T0,
                });
                Ok(())
            }
            Op::Printf { fmt, args } => self.emit_printf(fmt, args),
        }
    }

    fn emit_mov(&mut self, dest: VReg, a: Operand) -> Result<(), CodegenError> {
        if self.is_fp_class(dest) {
            let (rd, spill) = self.fp_dest(dest);
            let rs = self.fp_operand(a, FT0, T0)?;
            self.fmv(rd, rs);
            if rd == rs && spill.is_some() {
                // Value already in the right scratch; fall through to store.
            }
            self.finish_fp_dest(spill, if rd == rs { rs } else { rd })?;
        } else {
            let (rd, spill) = self.int_dest(dest);
            let rs = self.int_operand(a, T0)?;
            self.mv(rd, rs);
            self.finish_int_dest(spill, if rd == rs { rs } else { rd })?;
        }
        Ok(())
    }

    fn emit_bin(
        &mut self,
        dest: VReg,
        op: BinOp,
        ty: Scalar,
        a: Operand,
        b: Operand,
    ) -> Result<(), CodegenError> {
        if ty == Scalar::F32 {
            let (rd, spill) = self.fp_dest(dest);
            let ra = self.fp_operand(a, FT0, T0)?;
            let rb = self.fp_operand(b, FT1, T1)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max => {
                    let fop = match op {
                        BinOp::Add => FpOp::Add,
                        BinOp::Sub => FpOp::Sub,
                        BinOp::Mul => FpOp::Mul,
                        BinOp::Div => FpOp::Div,
                        BinOp::Min => FpOp::Min,
                        BinOp::Max => FpOp::Max,
                        _ => unreachable!(),
                    };
                    self.a.emit(Instr::FpOp {
                        op: fop,
                        rd,
                        rs1: ra,
                        rs2: rb,
                    });
                }
                BinOp::Rem => {
                    // fmod via truncated quotient (documented approximation
                    // for |a/b| < 2^31).
                    self.a.emit(Instr::FpOp {
                        op: FpOp::Div,
                        rd: FT0,
                        rs1: ra,
                        rs2: rb,
                    });
                    self.a.emit(Instr::FpCvt {
                        op: CvtOp::F2I,
                        rd: S0,
                        rs1: FT0,
                    });
                    self.a.emit(Instr::FpCvt {
                        op: CvtOp::I2F,
                        rd: FT0,
                        rs1: S0,
                    });
                    self.a.emit(Instr::FpOp {
                        op: FpOp::Mul,
                        rd: FT0,
                        rs1: FT0,
                        rs2: rb,
                    });
                    self.a.emit(Instr::FpOp {
                        op: FpOp::Sub,
                        rd,
                        rs1: ra,
                        rs2: FT0,
                    });
                }
                _ => {
                    return Err(CodegenError::Limit(format!(
                        "bitwise op {op} on f32 operands"
                    )))
                }
            }
            return self.finish_fp_dest(spill, rd);
        }
        let signed = ty == Scalar::I32;
        let (rd, spill) = self.int_dest(dest);
        let ra = self.int_operand(a, T0)?;
        // Immediate forms where profitable.
        if let Some(c) = b.as_const() {
            let imm = c.bits() as i32;
            if (-2048..2048).contains(&imm) {
                let done = match op {
                    BinOp::Add => {
                        self.a.emit(Instr::OpImm {
                            op: AluOp::Add,
                            rd,
                            rs1: ra,
                            imm,
                        });
                        true
                    }
                    BinOp::Sub if imm > -2048 => {
                        self.a.emit(Instr::OpImm {
                            op: AluOp::Add,
                            rd,
                            rs1: ra,
                            imm: -imm,
                        });
                        true
                    }
                    BinOp::And | BinOp::Or | BinOp::Xor => {
                        let aop = match op {
                            BinOp::And => AluOp::And,
                            BinOp::Or => AluOp::Or,
                            _ => AluOp::Xor,
                        };
                        self.a.emit(Instr::OpImm {
                            op: aop,
                            rd,
                            rs1: ra,
                            imm,
                        });
                        true
                    }
                    BinOp::Shl if (0..32).contains(&imm) => {
                        self.a.emit(Instr::OpImm {
                            op: AluOp::Sll,
                            rd,
                            rs1: ra,
                            imm,
                        });
                        true
                    }
                    BinOp::Shr if (0..32).contains(&imm) => {
                        self.a.emit(Instr::OpImm {
                            op: if signed { AluOp::Sra } else { AluOp::Srl },
                            rd,
                            rs1: ra,
                            imm,
                        });
                        true
                    }
                    _ => false,
                };
                if done {
                    return self.finish_int_dest(spill, rd);
                }
            }
        }
        let rb = self.int_operand(b, T1)?;
        match op {
            BinOp::Add => self.a.emit(Instr::Op {
                op: AluOp::Add,
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Sub => self.a.emit(Instr::Op {
                op: AluOp::Sub,
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::And => self.a.emit(Instr::Op {
                op: AluOp::And,
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Or => self.a.emit(Instr::Op {
                op: AluOp::Or,
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Xor => self.a.emit(Instr::Op {
                op: AluOp::Xor,
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Shl => self.a.emit(Instr::Op {
                op: AluOp::Sll,
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Shr => self.a.emit(Instr::Op {
                op: if signed { AluOp::Sra } else { AluOp::Srl },
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Mul => self.a.emit(Instr::MulDiv {
                op: MulOp::Mul,
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Div => self.a.emit(Instr::MulDiv {
                op: if signed { MulOp::Div } else { MulOp::Divu },
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Rem => self.a.emit(Instr::MulDiv {
                op: if signed { MulOp::Rem } else { MulOp::Remu },
                rd,
                rs1: ra,
                rs2: rb,
            }),
            BinOp::Min | BinOp::Max => {
                // Branchless select: mask = -(a<b); rd = ((a^b)&mask)^b
                // picks a when mask is all-ones.
                let slt = if signed { AluOp::Slt } else { AluOp::Sltu };
                let (x, y) = if op == BinOp::Min { (ra, rb) } else { (rb, ra) };
                self.a.emit(Instr::Op {
                    op: slt,
                    rd: S0,
                    rs1: x,
                    rs2: y,
                });
                self.a.emit(Instr::Op {
                    op: AluOp::Sub,
                    rd: S0,
                    rs1: abi::ZERO,
                    rs2: S0,
                });
                self.a.emit(Instr::Op {
                    op: AluOp::Xor,
                    rd: S1,
                    rs1: ra,
                    rs2: rb,
                });
                self.a.emit(Instr::Op {
                    op: AluOp::And,
                    rd: S1,
                    rs1: S1,
                    rs2: S0,
                });
                // When mask set we pick x; (x^y)&m ^ y == x.
                let base = if op == BinOp::Min { rb } else { ra };
                self.a.emit(Instr::Op {
                    op: AluOp::Xor,
                    rd,
                    rs1: S1,
                    rs2: base,
                });
            }
        }
        self.finish_int_dest(spill, rd)
    }

    fn emit_un(
        &mut self,
        dest: VReg,
        op: UnOp,
        ty: Scalar,
        a: Operand,
    ) -> Result<(), CodegenError> {
        match op {
            UnOp::Sqrt | UnOp::Exp | UnOp::Log | UnOp::Sin | UnOp::Cos | UnOp::Floor => {
                let (rd, spill) = self.fp_dest(dest);
                let ra = self.fp_operand(a, FT0, T0)?;
                let fop = match op {
                    UnOp::Sqrt => FpUnOp::Sqrt,
                    UnOp::Exp => FpUnOp::Exp,
                    UnOp::Log => FpUnOp::Log,
                    UnOp::Sin => FpUnOp::Sin,
                    UnOp::Cos => FpUnOp::Cos,
                    _ => FpUnOp::Floor,
                };
                self.a.emit(Instr::FpUn {
                    op: fop,
                    rd,
                    rs1: ra,
                });
                self.finish_fp_dest(spill, rd)
            }
            UnOp::Neg if ty == Scalar::F32 => {
                let (rd, spill) = self.fp_dest(dest);
                let ra = self.fp_operand(a, FT0, T0)?;
                self.a.emit(Instr::FpOp {
                    op: FpOp::SgnjN,
                    rd,
                    rs1: ra,
                    rs2: ra,
                });
                self.finish_fp_dest(spill, rd)
            }
            UnOp::Abs if ty == Scalar::F32 => {
                let (rd, spill) = self.fp_dest(dest);
                let ra = self.fp_operand(a, FT0, T0)?;
                self.a.emit(Instr::FpOp {
                    op: FpOp::SgnjX,
                    rd,
                    rs1: ra,
                    rs2: ra,
                });
                self.finish_fp_dest(spill, rd)
            }
            UnOp::I2F | UnOp::U2F => {
                let (rd, spill) = self.fp_dest(dest);
                let ra = self.int_operand(a, T0)?;
                self.a.emit(Instr::FpCvt {
                    op: if op == UnOp::I2F {
                        CvtOp::I2F
                    } else {
                        CvtOp::U2F
                    },
                    rd,
                    rs1: ra,
                });
                self.finish_fp_dest(spill, rd)
            }
            UnOp::F2I => {
                let (rd, spill) = self.int_dest(dest);
                let ra = self.fp_operand(a, FT0, T0)?;
                self.a.emit(Instr::FpCvt {
                    op: CvtOp::F2I,
                    rd,
                    rs1: ra,
                });
                self.finish_int_dest(spill, rd)
            }
            UnOp::Neg => {
                let (rd, spill) = self.int_dest(dest);
                let ra = self.int_operand(a, T0)?;
                self.a.emit(Instr::Op {
                    op: AluOp::Sub,
                    rd,
                    rs1: abi::ZERO,
                    rs2: ra,
                });
                self.finish_int_dest(spill, rd)
            }
            UnOp::Not => {
                let (rd, spill) = self.int_dest(dest);
                let ra = self.int_operand(a, T0)?;
                if ty == Scalar::Bool {
                    self.a.emit(Instr::OpImm {
                        op: AluOp::Sltu,
                        rd,
                        rs1: ra,
                        imm: 1,
                    });
                } else {
                    self.a.emit(Instr::OpImm {
                        op: AluOp::Xor,
                        rd,
                        rs1: ra,
                        imm: -1,
                    });
                }
                self.finish_int_dest(spill, rd)
            }
            UnOp::Abs => {
                let (rd, spill) = self.int_dest(dest);
                let ra = self.int_operand(a, T0)?;
                self.a.emit(Instr::OpImm {
                    op: AluOp::Sra,
                    rd: S0,
                    rs1: ra,
                    imm: 31,
                });
                self.a.emit(Instr::Op {
                    op: AluOp::Xor,
                    rd: S1,
                    rs1: ra,
                    rs2: S0,
                });
                self.a.emit(Instr::Op {
                    op: AluOp::Sub,
                    rd,
                    rs1: S1,
                    rs2: S0,
                });
                self.finish_int_dest(spill, rd)
            }
            UnOp::IntCast => self.emit_mov(dest, a),
        }
    }

    fn emit_cmp(
        &mut self,
        dest: VReg,
        op: CmpOp,
        ty: Scalar,
        a: Operand,
        b: Operand,
    ) -> Result<(), CodegenError> {
        let (rd, spill) = self.int_dest(dest);
        if ty == Scalar::F32 {
            let ra = self.fp_operand(a, FT0, T0)?;
            let rb = self.fp_operand(b, FT1, T1)?;
            let (fop, swap, invert) = match op {
                CmpOp::Eq => (FpCmpOp::Eq, false, false),
                CmpOp::Ne => (FpCmpOp::Eq, false, true),
                CmpOp::Lt => (FpCmpOp::Lt, false, false),
                CmpOp::Le => (FpCmpOp::Le, false, false),
                CmpOp::Gt => (FpCmpOp::Lt, true, false),
                CmpOp::Ge => (FpCmpOp::Le, true, false),
            };
            let (x, y) = if swap { (rb, ra) } else { (ra, rb) };
            self.a.emit(Instr::FpCmp {
                op: fop,
                rd,
                rs1: x,
                rs2: y,
            });
            if invert {
                self.a.emit(Instr::OpImm {
                    op: AluOp::Xor,
                    rd,
                    rs1: rd,
                    imm: 1,
                });
            }
            return self.finish_int_dest(spill, rd);
        }
        let signed = ty == Scalar::I32;
        let slt = if signed { AluOp::Slt } else { AluOp::Sltu };
        let ra = self.int_operand(a, T0)?;
        let rb = self.int_operand(b, T1)?;
        match op {
            CmpOp::Lt => self.a.emit(Instr::Op {
                op: slt,
                rd,
                rs1: ra,
                rs2: rb,
            }),
            CmpOp::Gt => self.a.emit(Instr::Op {
                op: slt,
                rd,
                rs1: rb,
                rs2: ra,
            }),
            CmpOp::Ge => {
                self.a.emit(Instr::Op {
                    op: slt,
                    rd,
                    rs1: ra,
                    rs2: rb,
                });
                self.a.emit(Instr::OpImm {
                    op: AluOp::Xor,
                    rd,
                    rs1: rd,
                    imm: 1,
                });
            }
            CmpOp::Le => {
                self.a.emit(Instr::Op {
                    op: slt,
                    rd,
                    rs1: rb,
                    rs2: ra,
                });
                self.a.emit(Instr::OpImm {
                    op: AluOp::Xor,
                    rd,
                    rs1: rd,
                    imm: 1,
                });
            }
            CmpOp::Eq => {
                self.a.emit(Instr::Op {
                    op: AluOp::Xor,
                    rd: S0,
                    rs1: ra,
                    rs2: rb,
                });
                self.a.emit(Instr::OpImm {
                    op: AluOp::Sltu,
                    rd,
                    rs1: S0,
                    imm: 1,
                });
            }
            CmpOp::Ne => {
                self.a.emit(Instr::Op {
                    op: AluOp::Xor,
                    rd: S0,
                    rs1: ra,
                    rs2: rb,
                });
                self.a.emit(Instr::Op {
                    op: AluOp::Sltu,
                    rd,
                    rs1: abi::ZERO,
                    rs2: S0,
                });
            }
        }
        self.finish_int_dest(spill, rd)
    }

    fn emit_select(
        &mut self,
        dest: VReg,
        ty: Scalar,
        cond: Operand,
        a: Operand,
        b: Operand,
    ) -> Result<(), CodegenError> {
        let rc = self.int_operand(cond, T2)?;
        if ty == Scalar::F32 {
            let (rd, spill) = self.fp_dest(dest);
            let ra = self.fp_operand(a, FT0, T0)?;
            let rb = self.fp_operand(b, FT1, T1)?;
            self.a.emit(Instr::FpCvt {
                op: CvtOp::MvF2X,
                rd: S0,
                rs1: ra,
            });
            self.a.emit(Instr::FpCvt {
                op: CvtOp::MvF2X,
                rd: S1,
                rs1: rb,
            });
            self.a.emit(Instr::Op {
                op: AluOp::Xor,
                rd: S0,
                rs1: S0,
                rs2: S1,
            });
            self.a.emit(Instr::Op {
                op: AluOp::Sub,
                rd: T0,
                rs1: abi::ZERO,
                rs2: rc,
            });
            self.a.emit(Instr::Op {
                op: AluOp::And,
                rd: S0,
                rs1: S0,
                rs2: T0,
            });
            self.a.emit(Instr::Op {
                op: AluOp::Xor,
                rd: S0,
                rs1: S0,
                rs2: S1,
            });
            self.a.emit(Instr::FpCvt {
                op: CvtOp::MvX2F,
                rd,
                rs1: S0,
            });
            return self.finish_fp_dest(spill, rd);
        }
        let (rd, spill) = self.int_dest(dest);
        let ra = self.int_operand(a, T0)?;
        let rb = self.int_operand(b, T1)?;
        self.a.emit(Instr::Op {
            op: AluOp::Sub,
            rd: S0,
            rs1: abi::ZERO,
            rs2: rc,
        });
        self.a.emit(Instr::Op {
            op: AluOp::Xor,
            rd: S1,
            rs1: ra,
            rs2: rb,
        });
        self.a.emit(Instr::Op {
            op: AluOp::And,
            rd: S1,
            rs1: S1,
            rs2: S0,
        });
        self.a.emit(Instr::Op {
            op: AluOp::Xor,
            rd,
            rs1: S1,
            rs2: rb,
        });
        self.finish_int_dest(spill, rd)
    }

    fn emit_gep(
        &mut self,
        dest: VReg,
        base: Operand,
        index: Operand,
        elem_bytes: u32,
    ) -> Result<(), CodegenError> {
        let (rd, spill) = self.int_dest(dest);
        let rb = self.int_operand(base, T0)?;
        if let Some(c) = index.as_const() {
            let off = (c.bits() as i32).wrapping_mul(elem_bytes as i32);
            if (-2048..2048).contains(&off) {
                self.a.emit(Instr::OpImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rb,
                    imm: off,
                });
            } else {
                self.li(S0, off);
                self.a.emit(Instr::Op {
                    op: AluOp::Add,
                    rd,
                    rs1: rb,
                    rs2: S0,
                });
            }
            return self.finish_int_dest(spill, rd);
        }
        let ri = self.int_operand(index, T1)?;
        if elem_bytes.is_power_of_two() {
            self.a.emit(Instr::OpImm {
                op: AluOp::Sll,
                rd: S0,
                rs1: ri,
                imm: elem_bytes.trailing_zeros() as i32,
            });
        } else {
            self.li(S0, elem_bytes as i32);
            self.a.emit(Instr::MulDiv {
                op: MulOp::Mul,
                rd: S0,
                rs1: ri,
                rs2: S0,
            });
        }
        self.a.emit(Instr::Op {
            op: AluOp::Add,
            rd,
            rs1: rb,
            rs2: S0,
        });
        self.finish_int_dest(spill, rd)
    }

    fn emit_load(&mut self, dest: VReg, ptr: Operand, ty: Scalar) -> Result<(), CodegenError> {
        let rp = self.int_operand(ptr, T0)?;
        if ty == Scalar::F32 {
            let (rd, spill) = self.fp_dest(dest);
            self.a.emit(Instr::Flw {
                rd,
                rs1: rp,
                imm: 0,
            });
            self.finish_fp_dest(spill, rd)
        } else {
            let (rd, spill) = self.int_dest(dest);
            self.a.emit(Instr::Lw {
                rd,
                rs1: rp,
                imm: 0,
            });
            self.finish_int_dest(spill, rd)
        }
    }

    fn emit_store(&mut self, ptr: Operand, value: Operand, ty: Scalar) -> Result<(), CodegenError> {
        let rp = self.int_operand(ptr, T0)?;
        if ty == Scalar::F32 {
            let rv = self.fp_operand(value, FT0, T1)?;
            self.a.emit(Instr::Fsw {
                rs1: rp,
                rs2: rv,
                imm: 0,
            });
        } else {
            let rv = self.int_operand(value, T1)?;
            self.a.emit(Instr::Sw {
                rs1: rp,
                rs2: rv,
                imm: 0,
            });
        }
        Ok(())
    }

    fn emit_atomic(
        &mut self,
        dest: VReg,
        op: AtomicOp,
        ptr: Operand,
        value: Operand,
        ty: Scalar,
    ) -> Result<(), CodegenError> {
        let (rd, spill) = self.int_dest(dest);
        let rp = self.int_operand(ptr, T0)?;
        let mut rv = self.int_operand(value, T1)?;
        let signed = ty == Scalar::I32;
        let aop = match op {
            AtomicOp::Add => AmoOp::Add,
            AtomicOp::Sub => {
                self.a.emit(Instr::Op {
                    op: AluOp::Sub,
                    rd: S0,
                    rs1: abi::ZERO,
                    rs2: rv,
                });
                rv = S0;
                AmoOp::Add
            }
            AtomicOp::Min => {
                if signed {
                    AmoOp::Min
                } else {
                    AmoOp::Minu
                }
            }
            AtomicOp::Max => {
                if signed {
                    AmoOp::Max
                } else {
                    AmoOp::Maxu
                }
            }
            AtomicOp::And => AmoOp::And,
            AtomicOp::Or => AmoOp::Or,
            AtomicOp::Xor => AmoOp::Xor,
            AtomicOp::Xchg => AmoOp::Swap,
        };
        self.a.emit(Instr::Amo {
            op: aop,
            rd,
            rs1: rp,
            rs2: rv,
        });
        self.finish_int_dest(spill, rd)
    }

    fn emit_workitem(&mut self, dest: VReg, w: Builtin) -> Result<(), CodegenError> {
        let (rd, spill) = self.int_dest(dest);
        match w {
            Builtin::GlobalId(d) => self.load_slot(rd, SLOT_GID + d as usize)?,
            Builtin::LocalId(d) => self.load_slot(rd, SLOT_LID + d as usize)?,
            Builtin::GroupId(d) => self.load_slot(rd, SLOT_GRP + d as usize)?,
            Builtin::GlobalSize(d) => self.a.emit(Instr::Lw {
                rd,
                rs1: X_ARG,
                imm: (arg::GLOBAL_X + 4 * d as u32) as i32,
            }),
            Builtin::LocalSize(d) => self.a.emit(Instr::Lw {
                rd,
                rs1: X_ARG,
                imm: (arg::LOCAL_X + 4 * d as u32) as i32,
            }),
            Builtin::NumGroups(d) => self.a.emit(Instr::Lw {
                rd,
                rs1: X_ARG,
                imm: (arg::GROUPS_X + 4 * d as u32) as i32,
            }),
        }
        self.finish_int_dest(spill, rd)
    }

    fn emit_local_addr(&mut self, dest: VReg, id: LocalArrayId) -> Result<(), CodegenError> {
        let (rd, spill) = self.int_dest(dest);
        let mut off = 0u32;
        for a in &self.f.local_arrays[..id.index()] {
            off += a.bytes();
        }
        let addr = LOCAL_BASE + off;
        self.a.emit(Instr::Lui {
            rd,
            imm: (addr >> 12) as i32,
        });
        let low = (addr & 0xFFF) as i32;
        if low != 0 {
            // LOCAL_BASE is 4 KiB aligned and arrays are word-aligned, so
            // the low part is always a valid positive immediate.
            self.a.emit(Instr::OpImm {
                op: AluOp::Add,
                rd,
                rs1: rd,
                imm: low,
            });
        }
        self.finish_int_dest(spill, rd)
    }

    fn emit_printf(&mut self, fmt: &str, args: &[(Operand, Scalar)]) -> Result<(), CodegenError> {
        // hart = ((core*NW + wid)*NT + tid); buf = PRINTF_BASE + hart*64.
        let a = &mut self.a;
        a.emit(Instr::CsrRead {
            rd: T0,
            csr: Csr::CoreId,
        });
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::NumWarps,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::WarpId,
        });
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::NumThreads,
        });
        a.emit(Instr::MulDiv {
            op: MulOp::Mul,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::CsrRead {
            rd: T1,
            csr: Csr::ThreadId,
        });
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: T0,
            rs1: T0,
            rs2: T1,
        });
        a.emit(Instr::OpImm {
            op: AluOp::Sll,
            rd: T0,
            rs1: T0,
            imm: PRINTF_STRIDE.trailing_zeros() as i32,
        });
        a.emit(Instr::Lui {
            rd: T1,
            imm: (PRINTF_BASE >> 12) as i32,
        });
        a.emit(Instr::Op {
            op: AluOp::Add,
            rd: T2,
            rs1: T0,
            rs2: T1,
        });
        // Store args into the buffer (T2 = base).
        let mut arg_kinds = Vec::with_capacity(args.len());
        for (i, (o, sc)) in args.iter().enumerate() {
            let imm = (i as i32) * 4;
            if *sc == Scalar::F32 {
                let rv = self.fp_operand(*o, FT0, T0)?;
                self.a.emit(Instr::Fsw {
                    rs1: T2,
                    rs2: rv,
                    imm,
                });
                arg_kinds.push(PrintArg::F32);
            } else {
                let rv = self.int_operand(*o, T0)?;
                self.a.emit(Instr::Sw {
                    rs1: T2,
                    rs2: rv,
                    imm,
                });
                arg_kinds.push(if *sc == Scalar::I32 {
                    PrintArg::I32
                } else {
                    PrintArg::U32
                });
            }
        }
        let id = self.printf_table.len() as u16;
        self.printf_table.push(PrintfFmt {
            fmt: fmt.to_string(),
            args: arg_kinds,
        });
        self.a.emit(Instr::Print { fmt: id });
        Ok(())
    }
}
