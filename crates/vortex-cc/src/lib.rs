//! `vortex-cc` — the soft-GPU kernel compiler back end.
//!
//! Plays the role of the extended PoCL + LLVM pipeline in the paper's
//! Figure 5: it consumes the shared kernel IR, performs divergence analysis,
//! lowers divergent control flow onto the Vortex SIMT instructions
//! (SPLIT/JOIN for divergent ifs, PRED for divergent loops — §II-D), applies
//! linear-scan register allocation, and emits a complete kernel binary with
//! the PoCL-style work-scheduling prologue that maps NDRange work items onto
//! the hardware's cores × warps × threads.
//!
//! Two scheduler shapes are emitted (see `emit`):
//! * **grid-stride** for kernels without barriers or `__local` arrays: every
//!   hardware thread strides over the flattened NDRange;
//! * **group-per-core** for barrier/local-memory kernels: work-groups are
//!   assigned to cores round-robin, one group resident at a time, with the
//!   hardware BAR instruction implementing `barrier()`.
//!
//! Documented subset restrictions (checked, reported as
//! [`CodegenError::Unstructured`]):
//! * `break`/`continue`/`return` under *divergent* control flow are not
//!   lowered (kernels use guard flags instead — the idiom GPU kernels use
//!   anyway); uniform ones are unrestricted.
//! * barrier kernels require `group_size % threads == 0` and
//!   `group_size <= warps*threads` (enforced by `vortex-rt` at launch).

pub mod emit;
pub mod regalloc;
pub mod structure;

use ocl_ir::Function;
use vortex_isa::Program;

/// Code generation options; the kernel is compiled for a specific hardware
/// shape, the way PoCL specializes kernels per device configuration.
#[derive(Debug, Clone, Copy)]
pub struct CodegenOpts {
    /// Threads per warp of the target configuration (fixes the stack
    /// interleaving stride so lane accesses coalesce).
    pub threads: u32,
}

impl Default for CodegenOpts {
    fn default() -> Self {
        CodegenOpts { threads: 4 }
    }
}

/// A compiled kernel plus the metadata the runtime needs to launch it.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    pub program: Program,
    pub name: String,
    pub num_args: usize,
    /// Kernel requires the group-per-core scheduler.
    pub group_mode: bool,
    /// Bytes of `__local` memory per group.
    pub local_bytes: u32,
    /// Per-warp stack bytes (runtime uses this to place stacks).
    pub warp_stack_bytes: u32,
    /// Static counts for reports and the ablation benches.
    pub divergent_branches: usize,
    pub spill_slots: usize,
    pub threads: u32,
}

/// Code-generation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CodegenError {
    /// Divergent control flow the SPLIT/JOIN/PRED lowering cannot express.
    Unstructured { kernel: String, detail: String },
    /// Internal limit (e.g. assembler offset range).
    Limit(String),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::Unstructured { kernel, detail } => {
                write!(
                    f,
                    "kernel `{kernel}`: unsupported divergent control flow: {detail}"
                )
            }
            CodegenError::Limit(m) => write!(f, "codegen limit: {m}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<CodegenError> for repro_diag::ReproError {
    fn from(e: CodegenError) -> Self {
        repro_diag::ReproError::Codegen {
            message: e.to_string(),
        }
    }
}

/// Compile one kernel for the given hardware shape.
///
/// Reports a `vortex_cc.codegen` wall-clock span (with `vortex_cc.regalloc`
/// nested inside it) into the `repro_util::metrics` registry when a harness
/// has enabled collection.
pub fn compile_kernel(f: &Function, opts: &CodegenOpts) -> Result<CompiledKernel, CodegenError> {
    repro_util::metrics::time("vortex_cc.codegen", || emit::compile(f, opts))
}
