//! Observer-effect tests for event tracing: attaching a recording sink
//! must not perturb the simulation. A traced run has to produce
//! bit-identical per-launch statistics, final memory, and printf output to
//! an untraced run — under both the event-driven fast-forward loop and the
//! dense reference loop, across a grid of core/warp/thread shapes.
//!
//! The second test pins down the complementary property: the *traces
//! themselves* describe the same execution in both scheduler modes. The
//! dense loop emits one-cycle stall spans and the fast loop emits bulk
//! spans, but after merging adjacent same-kind spans per core
//! ([`canonical_core_events`]) the two event streams must be identical.

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::suite::{benchmark, run_vortex_events, run_vortex_trace, Scale};
use fpga_gpu_repro::vsim::{canonical_core_events, SimConfig};

// Shapes must satisfy each benchmark's group-size constraint (dotproduct
// runs 16-wide work groups, backprop 64-wide).
type Shape = (u32, u32, u32);

const SHAPES: &[Shape] = &[(1, 4, 4), (1, 2, 8), (2, 4, 8), (2, 8, 16), (1, 16, 4)];
const WIDE_SHAPES: &[Shape] = &[(1, 8, 8), (1, 4, 16), (2, 8, 8), (2, 16, 4)];

fn bench_matrix() -> Vec<(&'static str, &'static [Shape])> {
    vec![
        ("Vecadd", SHAPES),
        ("Dotproduct", SHAPES),
        ("Transpose", SHAPES),
        ("Gaussian", SHAPES),
        ("Backprop", WIDE_SHAPES),
    ]
}

#[test]
fn tracing_does_not_perturb_either_scheduler() {
    for (name, shapes) in bench_matrix() {
        let b = benchmark(name).expect("benchmark exists");
        for &(c, w, t) in shapes {
            for dense in [false, true] {
                let mut cfg = SimConfig::new(VortexConfig::new(c, w, t));
                cfg.reference_mode = dense;
                let mode = if dense { "dense" } else { "fast" };
                let untraced = run_vortex_trace(&b, Scale::Test, &cfg)
                    .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t {mode} untraced: {e}"));
                let (traced, events) = run_vortex_events(&b, Scale::Test, &cfg)
                    .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t {mode} traced: {e}"));
                assert_eq!(
                    untraced, traced,
                    "{name} {c}c{w}w{t}t {mode}: tracing changed observable state"
                );
                assert_eq!(
                    events.len(),
                    traced.launch_stats.len(),
                    "{name} {c}c{w}w{t}t {mode}: one event stream per launch"
                );
                assert!(
                    events.iter().all(|l| !l.is_empty()),
                    "{name} {c}c{w}w{t}t {mode}: every launch must emit events"
                );
            }
        }
    }
}

#[test]
fn canonical_traces_agree_between_schedulers() {
    for (name, shapes) in bench_matrix() {
        let b = benchmark(name).expect("benchmark exists");
        for &(c, w, t) in shapes {
            let mut cfg = SimConfig::new(VortexConfig::new(c, w, t));
            let (_, fast) = run_vortex_events(&b, Scale::Test, &cfg)
                .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t fast: {e}"));
            cfg.reference_mode = true;
            let (_, dense) = run_vortex_events(&b, Scale::Test, &cfg)
                .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t dense: {e}"));
            assert_eq!(fast.len(), dense.len());
            for (li, (fl, dl)) in fast.iter().zip(&dense).enumerate() {
                for core in 0..c {
                    assert_eq!(
                        canonical_core_events(fl, core),
                        canonical_core_events(dl, core),
                        "{name} {c}c{w}w{t}t launch {li} core {core}: \
                         canonical traces diverge between schedulers"
                    );
                }
            }
        }
    }
}
