//! Fault-injection engine integration suite.
//!
//! The contract under test, end to end across crates:
//!
//! * **Zero overhead when silent.** A disarmed engine — and an armed one
//!   whose every point has probability zero — must leave the simulator's
//!   observable outputs (cycles, instructions) bit-identical to an
//!   uninstrumented run. The probes are one relaxed atomic load on the
//!   disarmed path, the same idiom as the metrics registry.
//! * **Loop-independent classification.** An injected memory bit flip must
//!   classify *identically* (same error, same message) whether the
//!   simulator runs its dense cycle-by-cycle reference loop or the
//!   event-driven fast-forward loop — the flip lands at the launch
//!   boundary, outside either loop.
//! * **Serve-level healing.** The hardened `serve_lines` retry loop turns
//!   a transient injected worker panic into a clean outcome, and the
//!   serve-input fault points surface as typed `Protocol` rejections, not
//!   connection-killing errors.
//!
//! The engine is process-global, so every test serializes on one mutex
//! (`into_inner` on poison: a test that panics must not wedge the rest).

use std::sync::Mutex;

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::fault::{self, FaultPlan, FaultPoint};
use fpga_gpu_repro::repro::{serve_lines, ServeOptions};
use fpga_gpu_repro::sched::{ExecConfig, Executor};
use fpga_gpu_repro::suite::{benchmark, run_vortex, Scale};
use fpga_gpu_repro::util::Json;
use fpga_gpu_repro::vsim::SimConfig;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg(reference_mode: bool) -> SimConfig {
    let mut c = SimConfig::new(VortexConfig::new(1, 4, 8));
    c.reference_mode = reference_mode;
    c
}

#[test]
fn disarmed_and_zero_probability_runs_are_bit_identical() {
    let _g = serial();
    fault::clear();
    let b = benchmark("Vecadd").unwrap();
    let base = run_vortex(&b, Scale::Test, &cfg(false)).expect("healthy run");
    // Armed engine, every point at probability zero: the probes evaluate
    // on the hot paths but must perturb nothing observable.
    let mut plan = FaultPlan::new(7);
    for p in fault::ALL_POINTS {
        plan = plan.with(p, 0.0, None, 0);
    }
    fault::install(&plan);
    let armed = run_vortex(&b, Scale::Test, &cfg(false)).expect("armed-but-silent run");
    let evaluated: u64 = fault::report().iter().map(|(_, e, _)| e).sum();
    let fired: u64 = fault::report().iter().map(|(_, _, f)| f).sum();
    fault::clear();
    let again = run_vortex(&b, Scale::Test, &cfg(false)).expect("disarmed again");
    assert_eq!(
        (base.cycles, base.instructions),
        (armed.cycles, armed.instructions),
        "an armed-but-silent engine must be invisible"
    );
    assert_eq!(
        (base.cycles, base.instructions),
        (again.cycles, again.instructions),
        "clearing the engine must restore the uninstrumented behaviour"
    );
    assert!(evaluated > 0, "the sim probes must actually have evaluated");
    assert_eq!(fired, 0, "probability zero must never fire");
}

#[test]
fn bitflip_classification_is_identical_in_dense_and_event_loops() {
    let _g = serial();
    let b = benchmark("Vecadd").unwrap();
    // Flip an exponent bit of heap word 10 — inside input buffer `a` —
    // before the first launch. The same plan is re-installed per loop so
    // both runs see the identical single fire.
    let plan = FaultPlan::new(3).times(FaultPoint::SimDramBitflip, 1, (10 << 8) | 30);
    let mut verdicts = Vec::new();
    for reference_mode in [false, true] {
        fault::install(&plan);
        let r = run_vortex(&b, Scale::Test, &cfg(reference_mode));
        fault::clear();
        verdicts.push(match r {
            Ok(_) => "ok".to_string(),
            Err(e) => format!("{e:?}"),
        });
    }
    assert_eq!(
        verdicts[0], verdicts[1],
        "dense and event loops must classify the injected flip identically"
    );
    assert!(
        verdicts[0].contains("WrongResult"),
        "an exponent-bit flip in an input buffer must surface as a wrong \
         result, got: {}",
        verdicts[0]
    );
}

#[test]
fn serve_retry_heals_a_transient_injected_panic() {
    let _g = serial();
    fault::install(&FaultPlan::new(11).times(FaultPoint::SchedJobPanic, 1, 0));
    let exec = Executor::new(ExecConfig::with_workers(1));
    let opts = ServeOptions {
        retry_max: 1,
        retry_backoff_ms: 1,
        ..ServeOptions::default()
    };
    let input = "[{\"id\": 1, \"bench\": \"Vecadd\"}, {\"id\": 2, \"bench\": \"Saxpy\"}]\n";
    let mut out = Vec::new();
    let s = serve_lines(&exec, &opts, input.as_bytes(), &mut out).unwrap();
    fault::clear();
    assert_eq!(
        (s.jobs, s.ok, s.failed, s.retried),
        (2, 2, 0, 1),
        "one injected panic, one retry, everything ok in the end"
    );
    let first = Json::parse(std::str::from_utf8(&out).unwrap().lines().next().unwrap()).unwrap();
    assert_eq!(first.get("id").unwrap().as_u64(), Some(1));
    assert_eq!(
        first.get("ok").unwrap().as_bool(),
        Some(true),
        "the healed outcome must land in the original response slot"
    );
}

#[test]
fn serve_line_faults_surface_as_typed_protocol_rejects() {
    let _g = serial();
    // Per-line fire schedule (each line probes oversize, then UTF-8, then
    // truncate ordinals independently): line 1 oversize, line 2 invalid
    // UTF-8, line 3 truncated mid-JSON, line 4 untouched.
    fault::install(
        &FaultPlan::new(5)
            .times(FaultPoint::ServeLineOversize, 1, 0)
            .with(FaultPoint::ServeLineInvalidUtf8, 1.0, Some(2), 0)
            .with(FaultPoint::ServeLineTruncate, 1.0, Some(3), 0),
    );
    let input = "{\"id\": 90, \"bench\": \"Vecadd\"}\n\
                 {\"id\": 91, \"bench\": \"Saxpy\"}\n\
                 {\"id\": 92, \"bench\": \"Sfilter\"}\n\
                 [{\"id\": 1, \"bench\": \"Vecadd\"}]\n";
    let exec = Executor::new(ExecConfig::with_workers(1));
    let mut out = Vec::new();
    let s = serve_lines(&exec, &ServeOptions::default(), input.as_bytes(), &mut out).unwrap();
    fault::clear();
    assert_eq!(
        (s.rejected, s.jobs, s.ok),
        (3, 1, 1),
        "three corrupted lines rejected, the clean batch still ran"
    );
    let resp: Vec<Json> = std::str::from_utf8(&out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).expect("every response line stays valid JSON"))
        .collect();
    let detail = |i: usize| {
        resp[i]
            .get("error")
            .unwrap()
            .get("detail")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    };
    for r in resp.iter().take(3) {
        assert_eq!(
            r.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("Protocol")
        );
    }
    assert!(
        detail(0).contains("exceeds"),
        "line 1: oversize, got {}",
        detail(0)
    );
    assert!(
        detail(1).contains("invalid UTF-8"),
        "line 2: utf8, got {}",
        detail(1)
    );
    assert!(
        detail(2).contains("bad JSON"),
        "line 3: truncation, got {}",
        detail(2)
    );
    assert_eq!(resp[3].get("ok").unwrap().as_bool(), Some(true));
}
