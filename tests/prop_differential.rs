//! Property-based differential testing: generate random kernels in the
//! OpenCL subset, run them through the reference interpreter and the full
//! Vortex flow (front end → codegen → cycle simulator), and require
//! bit-identical memory. This hammers the whole stack — expression
//! lowering, divergence lowering, register allocation, the scheduler
//! prologue, and the simulator's SIMT semantics — with shapes no
//! hand-written test covers.

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::ir::interp::{run_ndrange, KernelArg, Limits, Memory, NdRange};
use fpga_gpu_repro::vrt::{Arg, VxSession};
use fpga_gpu_repro::vsim::SimConfig;
use proptest::prelude::*;

/// A random integer expression over `i` (the gid), `v` (a loaded value) and
/// `acc`, rendered into kernel source.
fn arb_int_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            Just("i".to_string()),
            Just("v".to_string()),
            Just("acc".to_string()),
            (1i32..64).prop_map(|c| c.to_string()),
        ]
        .boxed()
    } else {
        let sub = arb_int_expr(depth - 1);
        prop_oneof![
            (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            // Divisors/shift amounts kept well-defined.
            (sub.clone(), 1i32..16).prop_map(|(a, b)| format!("({a} / {b})")),
            (sub.clone(), 1i32..16).prop_map(|(a, b)| format!("({a} % {b})")),
            (sub.clone(), 0i32..8).prop_map(|(a, b)| format!("({a} >> {b})")),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("({a} ^ {b})")),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| format!("min({a}, {b})")),
            sub.clone().prop_map(|a| format!("(-{a})")),
        ]
        .boxed()
    }
}

/// A random kernel: loads a[i], optionally loops (uniform or divergent
/// bound), optionally branches divergently, writes one output.
fn arb_kernel() -> impl Strategy<Value = String> {
    (
        arb_int_expr(2),
        arb_int_expr(1),
        arb_int_expr(1),
        0u8..3,   // loop kind: none / uniform / divergent
        any::<bool>(), // divergent if?
        1u32..6,  // uniform loop trips
    )
        .prop_map(|(body_e, then_e, cond_e, loop_kind, div_if, trips)| {
            let loop_hdr = match loop_kind {
                1 => format!("for (int j = 0; j < {trips}; j++)"),
                2 => "for (int j = 0; j < i % 4 + 1; j++)".to_string(),
                _ => "for (int j = 0; j < 1; j++)".to_string(),
            };
            let branch = if div_if {
                format!(
                    "if ((({cond_e}) & 3) == 1) {{ acc += {then_e}; }} else {{ acc -= 1; }}"
                )
            } else {
                format!("acc += {then_e};")
            };
            format!(
                "__kernel void fuzz(__global const int* a, __global int* o, int n) {{
                    int i = get_global_id(0);
                    int v = a[i];
                    int acc = 0;
                    {loop_hdr} {{
                        acc = acc + ({body_e});
                        {branch}
                    }}
                    o[i] = acc;
                }}"
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn vortex_matches_interpreter_on_random_kernels(src in arb_kernel(), seed in 0u64..1000) {
        let n = 64u32;
        let nd = NdRange::d1(n, 8);
        let input: Vec<i32> = (0..n as i64)
            .map(|i| ((i.wrapping_mul(2654435761) + seed as i64) % 199 - 99) as i32)
            .collect();

        let module = match ocl_front::compile(&src) {
            Ok(m) => m,
            Err(e) => return Err(TestCaseError::fail(format!("gen produced invalid source: {e}\n{src}"))),
        };
        let k = module.expect_kernel("fuzz");
        let mut mem = Memory::new(1 << 20);
        let pa = mem.alloc_i32(&input);
        let po = mem.alloc(n * 4);
        run_ndrange(
            k,
            &[KernelArg::Ptr(pa), KernelArg::Ptr(po), KernelArg::I32(n as i32)],
            &nd,
            &mut mem,
            &Limits::default(),
        )
        .map_err(|e| TestCaseError::fail(format!("interp: {e}\n{src}")))?;
        let want = mem.read_i32_slice(po, n as usize);

        let cfg = SimConfig::new(VortexConfig::new(1, 2, 4));
        let compiled = fpga_gpu_repro::vrt::compile_for(&src, "fuzz", &cfg)
            .map_err(|e| TestCaseError::fail(format!("codegen: {e}\n{src}")))?;
        let mut sess = VxSession::new(cfg, compiled);
        let da = sess.alloc_i32(&input).unwrap();
        let dout = sess.alloc(n * 4).unwrap();
        sess.launch(&[Arg::Buf(da), Arg::Buf(dout), Arg::I32(n as i32)], &nd)
            .map_err(|e| TestCaseError::fail(format!("launch: {e}\n{src}")))?;
        let got = sess.read_i32(dout, n as usize).unwrap();
        prop_assert_eq!(got, want, "kernel:\n{}", src);
    }

    /// The optimization pipeline preserves interpreter semantics on random
    /// kernels (CSE alias reasoning, const-fold, copy-prop, DCE).
    #[test]
    fn passes_preserve_semantics(src in arb_kernel(), seed in 0u64..1000) {
        let n = 32u32;
        let nd = NdRange::d1(n, 8);
        let input: Vec<i32> = (0..n as i64)
            .map(|i| {
                (i.wrapping_mul(11400714819323198485u64 as i64)
                    .wrapping_add(seed as i64)
                    % 97) as i32
            })
            .collect();
        let module = match ocl_front::compile(&src) {
            Ok(m) => m,
            Err(_) => return Ok(()),
        };
        let mut optimized = module.clone();
        ocl_ir::passes::optimize_module(&mut optimized, ocl_ir::passes::OptLevel::VariableReuse);
        ocl_ir::verify::verify_module(&optimized)
            .map_err(|e| TestCaseError::fail(format!("verify after passes: {e}\n{src}")))?;
        let run = |m: &ocl_ir::Module| {
            let mut mem = Memory::new(1 << 20);
            let pa = mem.alloc_i32(&input);
            let po = mem.alloc(n * 4);
            run_ndrange(
                m.expect_kernel("fuzz"),
                &[KernelArg::Ptr(pa), KernelArg::Ptr(po), KernelArg::I32(n as i32)],
                &nd,
                &mut mem,
                &Limits::default(),
            )
            .map(|_| mem.read_i32_slice(po, n as usize))
        };
        let base = run(&module).map_err(|e| TestCaseError::fail(format!("{e}\n{src}")))?;
        let opt = run(&optimized).map_err(|e| TestCaseError::fail(format!("opt: {e}\n{src}")))?;
        prop_assert_eq!(base, opt, "kernel:\n{}", src);
    }
}
