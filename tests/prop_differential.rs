//! Randomized differential testing: generate random kernels in the
//! OpenCL subset, run them through the reference interpreter and the full
//! Vortex flow (front end → codegen → cycle simulator), and require
//! bit-identical memory. This hammers the whole stack — expression
//! lowering, divergence lowering, register allocation, the scheduler
//! prologue, and the simulator's SIMT semantics — with shapes no
//! hand-written test covers.
//!
//! Cases are drawn from a fixed-seed [`repro_util::Rng`], so every run
//! replays the same sequence and a failing `case` index is a full repro.

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::ir::interp::{run_ndrange, KernelArg, Limits, Memory, NdRange};
use fpga_gpu_repro::vrt::{Arg, VxSession};
use fpga_gpu_repro::vsim::SimConfig;
use repro_util::Rng;

/// A random integer expression over `i` (the gid), `v` (a loaded value) and
/// `acc`, rendered into kernel source.
fn arb_int_expr(r: &mut Rng, depth: u32) -> String {
    if depth == 0 {
        return match r.below(4) {
            0 => "i".to_string(),
            1 => "v".to_string(),
            2 => "acc".to_string(),
            _ => r.range_i32(1, 64).to_string(),
        };
    }
    let a = arb_int_expr(r, depth - 1);
    match r.below(9) {
        0 => format!("({a} + {})", arb_int_expr(r, depth - 1)),
        1 => format!("({a} - {})", arb_int_expr(r, depth - 1)),
        2 => format!("({a} * {})", arb_int_expr(r, depth - 1)),
        // Divisors/shift amounts kept well-defined.
        3 => format!("({a} / {})", r.range_i32(1, 16)),
        4 => format!("({a} % {})", r.range_i32(1, 16)),
        5 => format!("({a} >> {})", r.range_i32(0, 8)),
        6 => format!("({a} ^ {})", arb_int_expr(r, depth - 1)),
        7 => format!("min({a}, {})", arb_int_expr(r, depth - 1)),
        _ => format!("(-{a})"),
    }
}

/// A random kernel: loads a[i], optionally loops (uniform or divergent
/// bound), optionally branches divergently, writes one output.
fn arb_kernel(r: &mut Rng) -> String {
    let body_e = arb_int_expr(r, 2);
    let then_e = arb_int_expr(r, 1);
    let cond_e = arb_int_expr(r, 1);
    let loop_kind = r.below(3);
    let div_if = r.bool();
    let trips = r.range_i32(1, 6);
    let loop_hdr = match loop_kind {
        1 => format!("for (int j = 0; j < {trips}; j++)"),
        2 => "for (int j = 0; j < i % 4 + 1; j++)".to_string(),
        _ => "for (int j = 0; j < 1; j++)".to_string(),
    };
    let branch = if div_if {
        format!("if ((({cond_e}) & 3) == 1) {{ acc += {then_e}; }} else {{ acc -= 1; }}")
    } else {
        format!("acc += {then_e};")
    };
    format!(
        "__kernel void fuzz(__global const int* a, __global int* o, int n) {{
            int i = get_global_id(0);
            int v = a[i];
            int acc = 0;
            {loop_hdr} {{
                acc = acc + ({body_e});
                {branch}
            }}
            o[i] = acc;
        }}"
    )
}

const CASES: u64 = 48;

#[test]
fn vortex_matches_interpreter_on_random_kernels() {
    let mut r = Rng::new(0xD1FF_0001);
    for case in 0..CASES {
        let src = arb_kernel(&mut r);
        let seed = r.below(1000);
        let n = 64u32;
        let nd = NdRange::d1(n, 8);
        let input: Vec<i32> = (0..n as i64)
            .map(|i| ((i.wrapping_mul(2654435761) + seed as i64) % 199 - 99) as i32)
            .collect();

        let module = ocl_front::compile(&src)
            .unwrap_or_else(|e| panic!("case {case}: gen produced invalid source: {e}\n{src}"));
        let k = module.expect_kernel("fuzz");
        let mut mem = Memory::new(1 << 20);
        let pa = mem.alloc_i32(&input);
        let po = mem.alloc(n * 4);
        run_ndrange(
            k,
            &[
                KernelArg::Ptr(pa),
                KernelArg::Ptr(po),
                KernelArg::I32(n as i32),
            ],
            &nd,
            &mut mem,
            &Limits::default(),
        )
        .unwrap_or_else(|e| panic!("case {case}: interp: {e}\n{src}"));
        let want = mem.read_i32_slice(po, n as usize);

        let cfg = SimConfig::new(VortexConfig::new(1, 2, 4));
        let compiled = fpga_gpu_repro::vrt::compile_for(&src, "fuzz", &cfg)
            .unwrap_or_else(|e| panic!("case {case}: codegen: {e}\n{src}"));
        let mut sess = VxSession::new(cfg, compiled);
        let da = sess.alloc_i32(&input).unwrap();
        let dout = sess.alloc(n * 4).unwrap();
        sess.launch(&[Arg::Buf(da), Arg::Buf(dout), Arg::I32(n as i32)], &nd)
            .unwrap_or_else(|e| panic!("case {case}: launch: {e}\n{src}"));
        let got = sess.read_i32(dout, n as usize).unwrap();
        assert_eq!(got, want, "case {case}: kernel:\n{src}");
    }
}

/// The optimization pipeline preserves interpreter semantics on random
/// kernels (CSE alias reasoning, const-fold, copy-prop, DCE).
#[test]
fn passes_preserve_semantics() {
    let mut r = Rng::new(0xD1FF_0002);
    for case in 0..CASES {
        let src = arb_kernel(&mut r);
        let seed = r.below(1000);
        let n = 32u32;
        let nd = NdRange::d1(n, 8);
        let input: Vec<i32> = (0..n as i64)
            .map(|i| {
                (i.wrapping_mul(11400714819323198485u64 as i64)
                    .wrapping_add(seed as i64)
                    % 97) as i32
            })
            .collect();
        let module = match ocl_front::compile(&src) {
            Ok(m) => m,
            Err(_) => continue,
        };
        let mut optimized = module.clone();
        ocl_ir::passes::optimize_module(&mut optimized, ocl_ir::passes::OptLevel::VariableReuse);
        ocl_ir::verify::verify_module(&optimized)
            .unwrap_or_else(|e| panic!("case {case}: verify after passes: {e}\n{src}"));
        let run = |m: &ocl_ir::Module| {
            let mut mem = Memory::new(1 << 20);
            let pa = mem.alloc_i32(&input);
            let po = mem.alloc(n * 4);
            run_ndrange(
                m.expect_kernel("fuzz"),
                &[
                    KernelArg::Ptr(pa),
                    KernelArg::Ptr(po),
                    KernelArg::I32(n as i32),
                ],
                &nd,
                &mut mem,
                &Limits::default(),
            )
            .map(|_| mem.read_i32_slice(po, n as usize))
        };
        let base = run(&module).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        let opt = run(&optimized).unwrap_or_else(|e| panic!("case {case}: opt: {e}\n{src}"));
        assert_eq!(base, opt, "case {case}: kernel:\n{src}");
    }
}
