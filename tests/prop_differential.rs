//! Randomized differential testing: generate random kernels in the
//! OpenCL subset, run them through the reference interpreter and the full
//! Vortex flow (front end → codegen → cycle simulator), and require
//! bit-identical memory. This hammers the whole stack — expression
//! lowering, divergence lowering, register allocation, the scheduler
//! prologue, and the simulator's SIMT semantics — with shapes no
//! hand-written test covers.
//!
//! Cases are drawn from a fixed-seed [`repro_util::Rng`], so every run
//! replays the same sequence and a failing `case` index is a full repro.

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::ir::interp::{run_ndrange, KernelArg, Limits, Memory, NdRange};
use fpga_gpu_repro::vrt::{Arg, VxSession};
use fpga_gpu_repro::vsim::SimConfig;
use repro_util::Rng;

/// A random integer expression over `i` (the gid), `v` (a loaded value) and
/// `acc`, rendered into kernel source.
fn arb_int_expr(r: &mut Rng, depth: u32) -> String {
    if depth == 0 {
        return match r.below(4) {
            0 => "i".to_string(),
            1 => "v".to_string(),
            2 => "acc".to_string(),
            _ => r.range_i32(1, 64).to_string(),
        };
    }
    let a = arb_int_expr(r, depth - 1);
    match r.below(9) {
        0 => format!("({a} + {})", arb_int_expr(r, depth - 1)),
        1 => format!("({a} - {})", arb_int_expr(r, depth - 1)),
        2 => format!("({a} * {})", arb_int_expr(r, depth - 1)),
        // Divisors/shift amounts kept well-defined.
        3 => format!("({a} / {})", r.range_i32(1, 16)),
        4 => format!("({a} % {})", r.range_i32(1, 16)),
        5 => format!("({a} >> {})", r.range_i32(0, 8)),
        6 => format!("({a} ^ {})", arb_int_expr(r, depth - 1)),
        7 => format!("min({a}, {})", arb_int_expr(r, depth - 1)),
        _ => format!("(-{a})"),
    }
}

/// A random kernel: loads a[i], optionally loops (uniform or divergent
/// bound), optionally branches divergently, writes one output.
fn arb_kernel(r: &mut Rng) -> String {
    let body_e = arb_int_expr(r, 2);
    let then_e = arb_int_expr(r, 1);
    let cond_e = arb_int_expr(r, 1);
    let loop_kind = r.below(3);
    let div_if = r.bool();
    let trips = r.range_i32(1, 6);
    let loop_hdr = match loop_kind {
        1 => format!("for (int j = 0; j < {trips}; j++)"),
        2 => "for (int j = 0; j < i % 4 + 1; j++)".to_string(),
        _ => "for (int j = 0; j < 1; j++)".to_string(),
    };
    let branch = if div_if {
        format!("if ((({cond_e}) & 3) == 1) {{ acc += {then_e}; }} else {{ acc -= 1; }}")
    } else {
        format!("acc += {then_e};")
    };
    format!(
        "__kernel void fuzz(__global const int* a, __global int* o, int n) {{
            int i = get_global_id(0);
            int v = a[i];
            int acc = 0;
            {loop_hdr} {{
                acc = acc + ({body_e});
                {branch}
            }}
            o[i] = acc;
        }}"
    )
}

/// A random group-mode kernel: every work-item publishes into its own
/// `__local` slot, synchronizes with `barrier()`, then reads a rotated
/// neighbor's slot — optionally repeated in a uniform-trip loop with a
/// trailing barrier protecting the next iteration's store (the Dotproduct
/// idiom). Barriers stay in uniform top-level control flow (divergent
/// branches come after), so generated kernels can never deadlock.
fn arb_local_kernel(r: &mut Rng) -> String {
    let store_e = arb_int_expr(r, 2);
    let mix_e = arb_int_expr(r, 1);
    let shift = r.range_i32(0, 7);
    let trips = r.range_i32(1, 4);
    let tail = if r.bool() {
        format!("if (((v ^ i) & 3) == 2) {{ acc += {mix_e}; }} else {{ acc -= 2; }}")
    } else {
        String::new()
    };
    format!(
        "__kernel void fuzz(__global const int* a, __global int* o, int n) {{
            int i = get_global_id(0);
            int lid = get_local_id(0);
            __local int tmp[8];
            int v = a[i];
            int acc = 0;
            for (int j = 0; j < {trips}; j++) {{
                tmp[lid] = ({store_e}) + j;
                barrier(CLK_LOCAL_MEM_FENCE);
                acc += tmp[(lid + {shift}) % 8];
                barrier(CLK_LOCAL_MEM_FENCE);
            }}
            {tail}
            o[i] = acc;
        }}"
    )
}

/// A random kernel whose only output-buffer writes are atomic
/// read-modify-writes. Per kernel, ops are drawn from one *commuting
/// family* — `add`/`sub` together, or a single one of `min`/`max`/`and`/
/// `or`/`xor` — and return values are discarded, so the final memory is
/// independent of thread interleaving and the sequential interpreter is a
/// valid oracle for the parallel simulator.
fn arb_atomic_kernel(r: &mut Rng) -> String {
    let family: &[&str] = match r.below(6) {
        0 => &["atomic_add", "atomic_sub"],
        1 => &["atomic_min"],
        2 => &["atomic_max"],
        3 => &["atomic_and"],
        4 => &["atomic_or"],
        _ => &["atomic_xor"],
    };
    let mut stmts = String::new();
    for _ in 0..1 + r.below(3) {
        let op = family[r.below(family.len() as u64) as usize];
        let idx = match r.below(3) {
            0 => format!("(i % {})", r.range_i32(1, 16)),
            1 => format!("(i & {})", r.range_i32(0, 15)),
            _ => format!("((i / {}) % 16)", r.range_i32(1, 8)),
        };
        let val = arb_int_expr(r, 2);
        stmts.push_str(&format!("{op}(&o[{idx}], {val});\n            "));
    }
    format!(
        "__kernel void fuzz(__global const int* a, __global int* o, int n) {{
            int i = get_global_id(0);
            int v = a[i];
            int acc = 0;
            {stmts}
        }}"
    )
}

const CASES: u64 = 48;

/// Deterministic pseudo-random input vector for a case.
fn case_input(n: u32, seed: u64) -> Vec<i32> {
    (0..n as i64)
        .map(|i| ((i.wrapping_mul(2654435761) + seed as i64) % 199 - 99) as i32)
        .collect()
}

/// Run `src` through the reference interpreter and the full Vortex flow
/// with `input` in `a` and `init_out` preloaded into `o`, and require
/// bit-identical final output memory.
fn assert_differential(case: u64, src: &str, input: &[i32], init_out: &[i32], nd: &NdRange) {
    let n = input.len() as i32;
    let module = ocl_front::compile(src)
        .unwrap_or_else(|e| panic!("case {case}: gen produced invalid source: {e}\n{src}"));
    let k = module.expect_kernel("fuzz");
    let mut mem = Memory::new(1 << 20);
    let pa = mem.alloc_i32(input);
    let po = mem.alloc_i32(init_out);
    run_ndrange(
        k,
        &[KernelArg::Ptr(pa), KernelArg::Ptr(po), KernelArg::I32(n)],
        nd,
        &mut mem,
        &Limits::default(),
    )
    .unwrap_or_else(|e| panic!("case {case}: interp: {e}\n{src}"));
    let want = mem.read_i32_slice(po, init_out.len());

    let cfg = SimConfig::new(VortexConfig::new(1, 2, 4));
    let compiled = fpga_gpu_repro::vrt::compile_for(src, "fuzz", &cfg)
        .unwrap_or_else(|e| panic!("case {case}: codegen: {e}\n{src}"));
    let mut sess = VxSession::new(cfg, compiled);
    let da = sess.alloc_i32(input).unwrap();
    let dout = sess.alloc_i32(init_out).unwrap();
    sess.launch(&[Arg::Buf(da), Arg::Buf(dout), Arg::I32(n)], nd)
        .unwrap_or_else(|e| panic!("case {case}: launch: {e}\n{src}"));
    let got = sess.read_i32(dout, init_out.len()).unwrap();
    assert_eq!(got, want, "case {case}: kernel:\n{src}");
}

#[test]
fn vortex_matches_interpreter_on_random_kernels() {
    let mut r = Rng::new(0xD1FF_0001);
    for case in 0..CASES {
        let src = arb_kernel(&mut r);
        let seed = r.below(1000);
        let n = 64u32;
        let nd = NdRange::d1(n, 8);
        let input: Vec<i32> = (0..n as i64)
            .map(|i| ((i.wrapping_mul(2654435761) + seed as i64) % 199 - 99) as i32)
            .collect();

        let module = ocl_front::compile(&src)
            .unwrap_or_else(|e| panic!("case {case}: gen produced invalid source: {e}\n{src}"));
        let k = module.expect_kernel("fuzz");
        let mut mem = Memory::new(1 << 20);
        let pa = mem.alloc_i32(&input);
        let po = mem.alloc(n * 4);
        run_ndrange(
            k,
            &[
                KernelArg::Ptr(pa),
                KernelArg::Ptr(po),
                KernelArg::I32(n as i32),
            ],
            &nd,
            &mut mem,
            &Limits::default(),
        )
        .unwrap_or_else(|e| panic!("case {case}: interp: {e}\n{src}"));
        let want = mem.read_i32_slice(po, n as usize);

        let cfg = SimConfig::new(VortexConfig::new(1, 2, 4));
        let compiled = fpga_gpu_repro::vrt::compile_for(&src, "fuzz", &cfg)
            .unwrap_or_else(|e| panic!("case {case}: codegen: {e}\n{src}"));
        let mut sess = VxSession::new(cfg, compiled);
        let da = sess.alloc_i32(&input).unwrap();
        let dout = sess.alloc(n * 4).unwrap();
        sess.launch(&[Arg::Buf(da), Arg::Buf(dout), Arg::I32(n as i32)], &nd)
            .unwrap_or_else(|e| panic!("case {case}: launch: {e}\n{src}"));
        let got = sess.read_i32(dout, n as usize).unwrap();
        assert_eq!(got, want, "case {case}: kernel:\n{src}");
    }
}

/// Random `__local` + `barrier()` kernels (group mode, local stores,
/// cross-work-item reads after synchronization) match the interpreter
/// bit-for-bit through the full Vortex flow.
#[test]
fn local_barrier_kernels_match_interpreter() {
    let mut r = Rng::new(0xD1FF_0003);
    for case in 0..CASES {
        let src = arb_local_kernel(&mut r);
        let seed = r.below(1000);
        let n = 64u32;
        let input = case_input(n, seed);
        let zeros = vec![0i32; n as usize];
        assert_differential(case, &src, &input, &zeros, &NdRange::d1(n, 8));
    }
}

/// Random atomic-RMW kernels produce order-independent final memory, so
/// the sequential interpreter and the parallel simulator must agree
/// exactly — on a non-trivially initialized output buffer (so `min`/`max`/
/// bitwise families see varied prior values).
#[test]
fn atomic_kernels_match_interpreter() {
    let mut r = Rng::new(0xD1FF_0004);
    for case in 0..CASES {
        let src = arb_atomic_kernel(&mut r);
        let seed = r.below(1000);
        let n = 64u32;
        let input = case_input(n, seed);
        let init_out: Vec<i32> = (0..n as i32).map(|i| (i * 37) % 53 - 26).collect();
        assert_differential(case, &src, &input, &init_out, &NdRange::d1(n, 8));
    }
}

/// Every optimization level — including the loop tier — preserves
/// semantics on random kernels through BOTH back ends: the reference
/// interpreter and the full Vortex flow each run the middle-end output at
/// `None`, `Basic`, `VariableReuse` and `Loop`, and every combination must
/// be bit-identical to the unoptimized interpreter (the oracle).
#[test]
fn all_levels_match_on_both_backends() {
    use ocl_ir::passes::OptLevel;
    let mut r = Rng::new(0xD1FF_0005);
    for case in 0..CASES / 2 {
        let src = arb_kernel(&mut r);
        let seed = r.below(1000);
        let n = 32u32;
        let nd = NdRange::d1(n, 8);
        let input = case_input(n, seed);
        let module = ocl_front::compile(&src)
            .unwrap_or_else(|e| panic!("case {case}: gen produced invalid source: {e}\n{src}"));
        let run_interp = |m: &ocl_ir::Module, what: &str| {
            let mut mem = Memory::new(1 << 20);
            let pa = mem.alloc_i32(&input);
            let po = mem.alloc(n * 4);
            run_ndrange(
                m.expect_kernel("fuzz"),
                &[
                    KernelArg::Ptr(pa),
                    KernelArg::Ptr(po),
                    KernelArg::I32(n as i32),
                ],
                &nd,
                &mut mem,
                &Limits::default(),
            )
            .unwrap_or_else(|e| panic!("case {case}: {what}: {e}\n{src}"));
            mem.read_i32_slice(po, n as usize)
        };
        let want = run_interp(&module, "oracle interp");
        for level in OptLevel::ALL {
            let mut m = module.clone();
            ocl_ir::passes::optimize_module(&mut m, level);
            ocl_ir::verify::verify_module(&m)
                .unwrap_or_else(|e| panic!("case {case}: verify at {level:?}: {e}\n{src}"));
            let got = run_interp(&m, "interp");
            assert_eq!(got, want, "case {case} interp at {level:?}:\n{src}");

            let cfg = SimConfig::new(VortexConfig::new(1, 2, 4));
            let compiled = fpga_gpu_repro::vrt::compile_for_at(&src, "fuzz", &cfg, level)
                .unwrap_or_else(|e| panic!("case {case}: codegen at {level:?}: {e}\n{src}"));
            let mut sess = VxSession::new(cfg, compiled);
            let da = sess.alloc_i32(&input).unwrap();
            let dout = sess.alloc(n * 4).unwrap();
            sess.launch(&[Arg::Buf(da), Arg::Buf(dout), Arg::I32(n as i32)], &nd)
                .unwrap_or_else(|e| panic!("case {case}: launch at {level:?}: {e}\n{src}"));
            let got = sess.read_i32(dout, n as usize).unwrap();
            assert_eq!(got, want, "case {case} vortex at {level:?}:\n{src}");
        }
    }
}

/// Random kernels — plain, `__local`+barrier, and atomic-RMW — produce
/// bit-identical cycles, statistics, and output memory under every run
/// loop and thread count: the dense reference loop is the oracle, and the
/// event-driven loop at 1/2/4 sim threads (sequential fast path, then the
/// parallel epoch loop on a 2-core machine) must match it exactly, at two
/// optimization levels. This is the determinism claim of the epoch design
/// under fuzzing pressure rather than hand-picked benchmarks.
#[test]
fn run_loops_agree_on_random_kernels_across_threads() {
    use ocl_ir::passes::OptLevel;
    let mut r = Rng::new(0xD1FF_0007);
    for case in 0..CASES / 2 {
        let src = match case % 3 {
            0 => arb_kernel(&mut r),
            1 => arb_local_kernel(&mut r),
            _ => arb_atomic_kernel(&mut r),
        };
        let seed = r.below(1000);
        let n = 64u32;
        let nd = NdRange::d1(n, 8);
        let input = case_input(n, seed);
        let init_out: Vec<i32> = (0..n as i32).map(|i| (i * 37) % 53 - 26).collect();
        for level in [OptLevel::None, OptLevel::VariableReuse] {
            let run = |reference: bool, threads: u32| -> (Vec<i32>, vortex_sim::SimStats) {
                let mut cfg = SimConfig::new(VortexConfig::new(2, 2, 4));
                cfg.reference_mode = reference;
                cfg.sim_threads = threads;
                let compiled = fpga_gpu_repro::vrt::compile_for_at(&src, "fuzz", &cfg, level)
                    .unwrap_or_else(|e| panic!("case {case}: codegen at {level:?}: {e}\n{src}"));
                let mut sess = VxSession::new(cfg, compiled);
                let da = sess.alloc_i32(&input).unwrap();
                let dout = sess.alloc_i32(&init_out).unwrap();
                let res = sess
                    .launch(&[Arg::Buf(da), Arg::Buf(dout), Arg::I32(n as i32)], &nd)
                    .unwrap_or_else(|e| {
                        panic!("case {case}: launch ref={reference} thr={threads}: {e}\n{src}")
                    });
                (sess.read_i32(dout, init_out.len()).unwrap(), res.stats)
            };
            let (want_mem, want_stats) = run(true, 1);
            for threads in [1u32, 2, 4] {
                let (got_mem, got_stats) = run(false, threads);
                assert_eq!(
                    got_stats, want_stats,
                    "case {case} at {level:?}, {threads} sim threads: stats\n{src}"
                );
                assert_eq!(
                    got_mem, want_mem,
                    "case {case} at {level:?}, {threads} sim threads: memory\n{src}"
                );
            }
        }
    }
}

/// Mutate a valid kernel source into likely-malformed text: truncate it,
/// drop or duplicate a span, or splice in characters the grammar treats as
/// structure (`{ } ( ) [ ] ; " \ #` …). ASCII-only generators keep every
/// mutation a valid UTF-8 boundary.
fn mutate_source(r: &mut Rng, src: &str) -> String {
    let bytes = src.as_bytes();
    let n = bytes.len();
    let mut out = bytes.to_vec();
    match r.below(4) {
        // Truncate: the classic "half a kernel" input.
        0 => out.truncate(r.below(n as u64 + 1) as usize),
        // Delete a span.
        1 => {
            let a = r.below(n as u64) as usize;
            let b = (a + 1 + r.below(16) as usize).min(n);
            out.drain(a..b);
        }
        // Duplicate a span in place.
        2 => {
            let a = r.below(n as u64) as usize;
            let b = (a + 1 + r.below(16) as usize).min(n);
            let chunk: Vec<u8> = out[a..b].to_vec();
            out.splice(a..a, chunk);
        }
        // Splice in structural noise.
        _ => {
            const NOISE: &[u8] = b"{}()[];\"\\#*/&|<>!%^~,.0x\x01\x7f";
            let at = r.below(n as u64 + 1) as usize;
            for _ in 0..1 + r.below(6) {
                let c = NOISE[r.below(NOISE.len() as u64) as usize];
                out.insert(at, c);
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The frontend is panic-free on garbage: every mutated or truncated
/// source either compiles or returns a diagnostic — it never panics. This
/// is the compile-side half of the fail-soft contract (the run-side half
/// lives in `tests/fail_soft.rs`).
#[test]
fn frontend_never_panics_on_malformed_source() {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let mut r = Rng::new(0xD1FF_0006);
    // Random mutants of generator output.
    for case in 0..CASES * 4 {
        let base = if r.bool() {
            arb_kernel(&mut r)
        } else {
            arb_local_kernel(&mut r)
        };
        let src = mutate_source(&mut r, &base);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = ocl_front::compile(&src);
        }));
        assert!(outcome.is_ok(), "case {case}: frontend panicked on:\n{src}");
    }
    // Known-nasty fixed seeds: unterminated comments and strings, stray
    // preprocessor lines, deep nesting, bare EOF mid-construct.
    let nasty = [
        "",
        "__kernel",
        "__kernel void k(",
        "__kernel void k() { /* never closed",
        "__kernel void k() { printf(\"never closed); }",
        "#define A",
        "#define A A\n__kernel void k() { int x = A; }",
        "__kernel void k() { int x = ((((((((((((((((1; }",
        "__kernel void k() { for (;;) }",
        "__kernel void k(__global int* o) { o[0] = 0x; }",
        "__kernel void k() { \u{1}\u{7f} }",
    ];
    for src in nasty {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _ = ocl_front::compile(src);
        }));
        assert!(outcome.is_ok(), "frontend panicked on:\n{src}");
    }
}

/// The optimization pipeline preserves interpreter semantics on random
/// kernels (CSE alias reasoning, const-fold, copy-prop, DCE).
#[test]
fn passes_preserve_semantics() {
    let mut r = Rng::new(0xD1FF_0002);
    for case in 0..CASES {
        let src = arb_kernel(&mut r);
        let seed = r.below(1000);
        let n = 32u32;
        let nd = NdRange::d1(n, 8);
        let input: Vec<i32> = (0..n as i64)
            .map(|i| {
                (i.wrapping_mul(11400714819323198485u64 as i64)
                    .wrapping_add(seed as i64)
                    % 97) as i32
            })
            .collect();
        let module = match ocl_front::compile(&src) {
            Ok(m) => m,
            Err(_) => continue,
        };
        let mut optimized = module.clone();
        ocl_ir::passes::optimize_module(&mut optimized, ocl_ir::passes::OptLevel::VariableReuse);
        ocl_ir::verify::verify_module(&optimized)
            .unwrap_or_else(|e| panic!("case {case}: verify after passes: {e}\n{src}"));
        let run = |m: &ocl_ir::Module| {
            let mut mem = Memory::new(1 << 20);
            let pa = mem.alloc_i32(&input);
            let po = mem.alloc(n * 4);
            run_ndrange(
                m.expect_kernel("fuzz"),
                &[
                    KernelArg::Ptr(pa),
                    KernelArg::Ptr(po),
                    KernelArg::I32(n as i32),
                ],
                &nd,
                &mut mem,
                &Limits::default(),
            )
            .map(|_| mem.read_i32_slice(po, n as usize))
        };
        let base = run(&module).unwrap_or_else(|e| panic!("case {case}: {e}\n{src}"));
        let opt = run(&optimized).unwrap_or_else(|e| panic!("case {case}: opt: {e}\n{src}"));
        assert_eq!(base, opt, "case {case}: kernel:\n{src}");
    }
}

// ---------------------------------------------------------------------------
// Compile-cache properties (PR 7): content addressing under fuzzing pressure
// ---------------------------------------------------------------------------

/// The cache can never serve a stale artifact: for random mutants of a
/// kernel whose original is already cached, looking the mutant up must be
/// indistinguishable from compiling it fresh — same module bytes when it
/// compiles, same rejection when it doesn't. Token-preserving mutants are
/// *allowed* (and expected) to hit; the property holds either way because
/// equal token streams lower to equal modules.
#[test]
fn cache_never_serves_stale_artifacts_for_mutants() {
    use fpga_gpu_repro::cache::{wire, Cache, CacheConfig};
    use ocl_ir::passes::OptLevel;
    let mut r = Rng::new(0xCAC4_0001);
    let cache = Cache::new(CacheConfig::default());
    for case in 0..CASES * 2 {
        let base = arb_kernel(&mut r);
        cache
            .optimize(&base, OptLevel::Basic)
            .unwrap_or_else(|e| panic!("case {case}: base failed: {e}\n{base}"));
        let mutant = mutate_source(&mut r, &base);
        let fresh = ocl_front::compile(&mutant).map(|mut m| {
            ocl_ir::passes::optimize_module(&mut m, OptLevel::Basic);
            m
        });
        match (cache.optimize(&mutant, OptLevel::Basic), fresh) {
            (Ok(cached), Ok(fresh)) => assert_eq!(
                wire::encode(&cached),
                wire::encode(&fresh),
                "case {case}: cached mutant != fresh mutant\nbase:\n{base}\nmutant:\n{mutant}"
            ),
            (Err(_), Err(_)) => {}
            (cached, fresh) => panic!(
                "case {case}: cache and fresh compile disagree on acceptance \
                 (cached ok={}, fresh ok={})\nmutant:\n{mutant}",
                cached.is_ok(),
                fresh.is_ok()
            ),
        }
    }
}

/// Formatting- and comment-only edits keep the content address: random
/// token-safe reformattings of random kernels fingerprint identically,
/// are served as hits, and decode to the same artifact bytes.
#[test]
fn cache_hits_on_formatting_only_edits() {
    use fpga_gpu_repro::cache::{token_fingerprint, wire, Cache, CacheConfig};
    use ocl_ir::passes::OptLevel;
    let mut r = Rng::new(0xCAC4_0002);
    for case in 0..CASES {
        let base = arb_kernel(&mut r);
        let mut pretty = base.clone();
        // Each transformation preserves the token stream exactly.
        if r.bool() {
            pretty = pretty.replace('\n', "\n\n");
        }
        if r.bool() {
            pretty = pretty.replace(';', ";\n  ");
        }
        if r.bool() {
            pretty = format!("/* case {case} */\n{pretty}");
        }
        pretty.push_str("\n// trailing note\n");
        assert_eq!(
            token_fingerprint(&base).unwrap(),
            token_fingerprint(&pretty).unwrap(),
            "case {case}: formatting changed the fingerprint\n{pretty}"
        );
        let cache = Cache::new(CacheConfig::default());
        let cold = cache.optimize(&base, OptLevel::Basic).unwrap();
        let warm = cache.optimize(&pretty, OptLevel::Basic).unwrap();
        assert_eq!(wire::encode(&cold), wire::encode(&warm), "case {case}");
        let s = cache.stats();
        assert_eq!(s.hits(), 1, "case {case}: reformatted source did not hit");
    }
}

/// Concurrency: hammer one shared disk-backed cache instance from
/// `par_map` workers (mixed cold and warm traffic over a pool of
/// kernels), then hammer a *second* instance racing over the same
/// directory. Every returned artifact must be bit-identical to the fresh
/// oracle, the store must end up torn-write-free (a cold restart sees
/// only hits), and no `.tmp` litter may survive.
#[test]
fn concurrent_cache_lookups_are_bit_identical_and_disk_stays_clean() {
    use fpga_gpu_repro::cache::{wire, Cache, CacheConfig};
    use ocl_ir::passes::OptLevel;
    use repro_util::par::par_map;

    let dir = std::env::temp_dir().join(format!("repro-cache-prop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mk = || {
        Cache::new(CacheConfig {
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
    };

    let mut r = Rng::new(0xCAC4_0003);
    let pool: Vec<String> = (0..12).map(|_| arb_kernel(&mut r)).collect();
    let oracle: Vec<Vec<u8>> = pool
        .iter()
        .map(|src| {
            let mut m = ocl_front::compile(src).unwrap();
            ocl_ir::passes::optimize_module(&mut m, OptLevel::Loop);
            wire::encode(&m)
        })
        .collect();

    let cache = mk();
    let racer = mk();
    // 4 passes over the pool x 2 racing instances; first touches are cold
    // (and race each other onto disk), the rest are warm.
    let jobs: Vec<usize> = (0..pool.len() * 4).map(|j| j % pool.len()).collect();
    let results = par_map(&jobs, |&i| {
        let a = wire::encode(&cache.optimize(&pool[i], OptLevel::Loop).unwrap());
        let b = wire::encode(&racer.optimize(&pool[i], OptLevel::Loop).unwrap());
        (i, a, b)
    });
    for (i, a, b) in results {
        assert_eq!(
            a, oracle[i],
            "instance A returned non-fresh bytes for kernel {i}"
        );
        assert_eq!(
            b, oracle[i],
            "instance B returned non-fresh bytes for kernel {i}"
        );
    }
    assert_eq!(cache.stats().corrupt + racer.stats().corrupt, 0);

    // A cold restart over the racy directory sees a fully intact store.
    let fresh = mk();
    for (i, src) in pool.iter().enumerate() {
        let m = wire::encode(&fresh.optimize(src, OptLevel::Loop).unwrap());
        assert_eq!(m, oracle[i], "post-race disk entry for kernel {i} is wrong");
    }
    let s = fresh.stats();
    assert_eq!(s.misses, 0, "racing writers left holes in the store");
    assert_eq!(s.corrupt, 0, "racing writers tore an entry");
    let tmp_litter = std::fs::read_dir(&dir)
        .unwrap()
        .filter(|f| {
            f.as_ref()
                .unwrap()
                .path()
                .extension()
                .is_some_and(|e| e == "tmp")
        })
        .count();
    assert_eq!(
        tmp_litter, 0,
        "temporary files leaked past the atomic rename"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
