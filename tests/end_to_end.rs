//! Cross-crate integration tests: the paper's full methodology end-to-end.
//! Identical OpenCL source goes through the shared front end into (a) the
//! reference interpreter, (b) the Vortex soft-GPU flow, and (c) the HLS
//! flow, and all three must agree; coverage and area artifacts must match
//! the paper's tables.

use fpga_gpu_repro::arch::{Device, VortexConfig};
use fpga_gpu_repro::hls;
use fpga_gpu_repro::ir::interp::{run_ndrange, KernelArg, Limits, Memory, NdRange};
use fpga_gpu_repro::suite::{self, Scale};
use fpga_gpu_repro::vrt::{Arg, VxSession};
use fpga_gpu_repro::vsim::SimConfig;

/// Three-way agreement on a kernel with divergence, loops, and f32 math.
#[test]
fn three_backends_agree_bit_for_bit() {
    let src = r#"
        __kernel void mix(__global const float* a, __global float* o, int n) {
            int i = get_global_id(0);
            float acc = 0.0f;
            for (int j = 0; j < i % 5 + 1; j++) {
                acc += sqrt(fabs(a[(i + j) % n]));
            }
            if (acc > 2.0f) acc = acc * 0.5f; else acc = acc + 1.0f;
            o[i] = acc;
        }
    "#;
    let n = 128u32;
    let nd = NdRange::d1(n, 16);
    let input: Vec<f32> = (0..n).map(|i| (i as f32 - 64.0) * 0.37).collect();

    // (a) interpreter.
    let module = ocl_front::compile(src).unwrap();
    let k = module.expect_kernel("mix");
    let mut mem_i = Memory::new(1 << 20);
    let pa = mem_i.alloc_f32(&input);
    let po = mem_i.alloc(n * 4);
    run_ndrange(
        k,
        &[
            KernelArg::Ptr(pa),
            KernelArg::Ptr(po),
            KernelArg::I32(n as i32),
        ],
        &nd,
        &mut mem_i,
        &Limits::default(),
    )
    .unwrap();
    let ref_out = mem_i.read_u32_slice(po, n as usize);

    // (b) Vortex.
    let cfg = SimConfig::new(VortexConfig::new(2, 4, 8));
    let compiled = fpga_gpu_repro::vrt::compile_for(src, "mix", &cfg).unwrap();
    let mut sess = VxSession::new(cfg, compiled);
    let da = sess.alloc_f32(&input).unwrap();
    let dout = sess.alloc(n * 4).unwrap();
    sess.launch(&[Arg::Buf(da), Arg::Buf(dout), Arg::I32(n as i32)], &nd)
        .unwrap();
    let vx_out = sess.read_u32(dout, n as usize).unwrap();
    assert_eq!(vx_out, ref_out, "vortex != interpreter");

    // (c) HLS.
    let mut mem_h = Memory::new(1 << 20);
    let ha = mem_h.alloc_f32(&input);
    let ho = mem_h.alloc(n * 4);
    hls::execute_ndrange(
        k,
        &[
            KernelArg::Ptr(ha),
            KernelArg::Ptr(ho),
            KernelArg::I32(n as i32),
        ],
        &nd,
        &mut mem_h,
        &Device::mx2100(),
    )
    .unwrap();
    let hls_out = mem_h.read_u32_slice(ho, n as usize);
    assert_eq!(hls_out, ref_out, "hls != interpreter");
}

/// IR optimization passes preserve semantics through the whole Vortex flow.
#[test]
fn optimized_ir_produces_identical_vortex_results() {
    let src = r#"
        __kernel void poly(__global const float* x, __global float* y) {
            int i = get_global_id(0);
            float v = x[i];
            float a = v * 2.0f + 1.0f;
            float b = v * 2.0f + 1.0f;
            y[i] = a * b + x[i] * x[i];
        }
    "#;
    let n = 64u32;
    let input: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
    let nd = NdRange::d1(n, 8);
    let run = |module: &ocl_ir::Module| {
        let cfg = SimConfig::new(VortexConfig::new(1, 2, 4));
        let compiled = fpga_gpu_repro::vcc::compile_kernel(
            module.expect_kernel("poly"),
            &fpga_gpu_repro::vcc::CodegenOpts { threads: 4 },
        )
        .unwrap();
        let mut sess = VxSession::new(cfg, compiled);
        let dx = sess.alloc_f32(&input).unwrap();
        let dy = sess.alloc(n * 4).unwrap();
        sess.launch(&[Arg::Buf(dx), Arg::Buf(dy)], &nd).unwrap();
        (
            sess.read_u32(dy, n as usize).unwrap(),
            // Rough code-size proxy to confirm the passes did something.
            module.kernels[0].num_insts(),
        )
    };
    let baseline = ocl_front::compile(src).unwrap();
    let mut optimized = baseline.clone();
    let stats =
        ocl_ir::passes::optimize_module(&mut optimized, ocl_ir::passes::OptLevel::VariableReuse);
    assert!(
        stats.rewrites("cse") > 0,
        "CSE should fire on the duplicate expr"
    );
    let (out_base, size_base) = run(&baseline);
    let (out_opt, size_opt) = run(&optimized);
    assert_eq!(out_base, out_opt, "optimization changed results");
    assert!(
        size_opt < size_base,
        "optimization should shrink the kernel"
    );
}

/// The binary encoding round-trips through a real compiled kernel.
#[test]
fn compiled_kernel_encodes_and_decodes() {
    let src = "__kernel void k(__global int* o) { o[get_global_id(0)] = 7; }";
    let cfg = SimConfig::new(VortexConfig::new(1, 1, 2));
    let compiled = fpga_gpu_repro::vrt::compile_for(src, "k", &cfg).unwrap();
    let words = fpga_gpu_repro::visa::encode::encode_program(&compiled.program.instrs);
    let back = fpga_gpu_repro::visa::encode::decode_program(&words).unwrap();
    assert_eq!(back, compiled.program.instrs);
}

/// Suite-level: one barrier benchmark and one atomics benchmark through the
/// full Vortex flow, plus Table I spot checks on the HLS side.
#[test]
fn representative_suite_benchmarks_roundtrip() {
    let cfg = SimConfig::new(VortexConfig::new(2, 4, 16));
    for name in ["Dotproduct", "Hybridsort", "Backprop"] {
        let b = suite::benchmark(name).unwrap();
        suite::run_vortex(&b, Scale::Test, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    // HLS: hybridsort fails on atomics (MX2100), runs fine on the DDR4
    // board the paper puts Vortex on.
    let b = suite::benchmark("Hybridsort").unwrap();
    let on_hbm = suite::run_hls(&b, Scale::Test, &Device::mx2100()).unwrap();
    assert!(on_hbm.is_err());
    let on_ddr = suite::run_hls(&b, Scale::Test, &Device::sx2800()).unwrap();
    assert!(on_ddr.is_ok());
}

/// The per-experiment index of DESIGN.md: every generator produces data.
#[test]
fn all_experiment_generators_run() {
    let t2 = fpga_gpu_repro::repro::table2();
    assert_eq!(t2.len(), 3);
    let t3 = fpga_gpu_repro::repro::table3();
    assert_eq!(t3.len(), 4);
    let t4 = fpga_gpu_repro::repro::table4();
    assert_eq!(t4.len(), 5);
    let g = fpga_gpu_repro::repro::fig7_grid("Vecadd", 1, &[2, 4], &[4], Scale::Test);
    assert_eq!(g.cells.len(), 2);
}
