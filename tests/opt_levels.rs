//! Optimization-level invariants over the real benchmark suite, plus the
//! golden `repro opt-report` rendering for backprop. Regenerate the golden
//! after an intentional middle-end change with
//! `REGOLD=1 cargo test --test opt_levels`.

use ocl_ir::passes::OptLevel;
use ocl_suite::{benchmark, run_on_interp, Scale};

/// Every suite benchmark computes correct results on the reference
/// interpreter at every optimization level (the workload's result check
/// runs inside `run_on_interp`), and higher levels never execute more
/// dynamic instructions than `None`.
#[test]
fn every_benchmark_correct_at_every_level() {
    for b in ocl_suite::all_benchmarks() {
        let base = run_on_interp(&b, Scale::Test, OptLevel::None)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        for level in [OptLevel::Basic, OptLevel::VariableReuse, OptLevel::Loop] {
            let r = run_on_interp(&b, Scale::Test, level)
                .unwrap_or_else(|e| panic!("{} at {level:?}: {e}", b.name));
            assert!(
                r.instructions <= base.instructions,
                "{} at {level:?}: {} dynamic insts vs {} unoptimized",
                b.name,
                r.instructions,
                base.instructions
            );
        }
    }
}

/// The loop tier actually pays for itself: on at least three loop-heavy
/// benchmarks `Loop` strictly reduces the dynamic instruction count over
/// `VariableReuse` (and regresses it nowhere — checked against the full
/// suite above).
#[test]
fn loop_tier_strictly_reduces_dynamic_count() {
    let candidates = [
        "Matmul", "Sgemm", "Kmeans", "Gaussian", "Stencil", "Backprop", "Cutcp",
    ];
    let mut reduced = Vec::new();
    for name in candidates {
        let b = benchmark(name).unwrap();
        let reuse = run_on_interp(&b, Scale::Test, OptLevel::VariableReuse)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let l = run_on_interp(&b, Scale::Test, OptLevel::Loop)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            l.instructions <= reuse.instructions,
            "{name}: loop tier regressed {} -> {}",
            reuse.instructions,
            l.instructions
        );
        if l.instructions < reuse.instructions {
            reduced.push((name, reuse.instructions, l.instructions));
        }
    }
    assert!(
        reduced.len() >= 3,
        "loop tier should strictly reduce >= 3 benchmarks, got {reduced:?}"
    );
}

/// The Vortex flow agrees with the interpreter at the loop tier on the
/// benchmarks the tier rewrites most (full-flow differential at `Loop`).
#[test]
fn loop_tier_vortex_matches_reference() {
    use fpga_gpu_repro::arch::VortexConfig;
    use vortex_sim::SimConfig;
    let cfg = SimConfig::new(VortexConfig::new(1, 8, 8));
    for name in ["Matmul", "Sgemm", "Kmeans"] {
        let b = benchmark(name).unwrap();
        // run_vortex_at verifies the workload's expected results itself.
        ocl_suite::run_vortex_at(&b, Scale::Test, &cfg, OptLevel::Loop)
            .unwrap_or_else(|e| panic!("{name} on vortex at Loop: {e}"));
    }
}

/// Golden rendering of `repro opt-report backprop` (without the timing
/// column, which is the only nondeterministic part).
#[test]
fn backprop_opt_report_matches_golden() {
    let r = repro_core::opt_report("Backprop").unwrap();
    let rendered = repro_core::render_opt_report(&r, false);
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/backprop_opt_report.md"
    );
    if std::env::var_os("REGOLD").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with REGOLD=1 to create it");
    assert_eq!(
        rendered, golden,
        "opt-report output changed; if intentional, regenerate with REGOLD=1"
    );
}
