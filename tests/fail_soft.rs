//! Adversarial-kernel fail-soft suite: kernels that are *wrong on purpose*
//! (divergent barriers, mismatched barrier counts, infinite loops, OOB
//! stores) must terminate within the watchdog budget on BOTH back ends —
//! the reference interpreter and the Vortex cycle simulator — and classify
//! identically under the [`ReproError`] taxonomy. No panics, no hangs.

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::diag::{FailureClass, ReproError};
use fpga_gpu_repro::front;
use fpga_gpu_repro::ir::interp::{run_ndrange, KernelArg, Limits, Memory, NdRange};
use fpga_gpu_repro::vrt::{self, Arg, VxSession};
use fpga_gpu_repro::vsim::SimConfig;

const OUT_WORDS: u32 = 64;

/// Interpreter budget small enough to bound a runaway kernel to well under
/// a second while never tripping on the healthy prologue.
const INTERP_STEPS: u64 = 100_000;

/// Simulator config with both watchdog budgets engaged. One core, four
/// warps of four threads: a 16-item work-group maps one warp per four
/// work-items, so `get_local_id(0) < 4` divergence is warp-uniform.
fn budgeted() -> SimConfig {
    let mut cfg = SimConfig::new(VortexConfig::new(1, 4, 4));
    cfg.max_cycles = 5_000_000;
    cfg.max_instructions = 200_000;
    cfg
}

/// Run `src` on the reference interpreter and return its classified fault.
fn interp_error(src: &str, nd: &NdRange) -> ReproError {
    let module = front::compile(src).expect("adversarial kernels still compile");
    let k = module.expect_kernel("bad");
    let mut mem = Memory::new(1 << 20);
    let po = mem.alloc(OUT_WORDS * 4);
    let err = run_ndrange(
        k,
        &[KernelArg::Ptr(po)],
        nd,
        &mut mem,
        &Limits {
            max_steps_per_item: INTERP_STEPS,
        },
    )
    .expect_err("kernel must fault on the interpreter");
    ReproError::from(err)
}

/// Run `src` through the full Vortex flow and return its classified fault.
fn vortex_error(src: &str, nd: &NdRange) -> ReproError {
    let cfg = budgeted();
    let compiled = vrt::compile_for(src, "bad", &cfg).expect("adversarial kernels still compile");
    let mut sess = VxSession::new(cfg, compiled);
    let dout = sess.alloc(OUT_WORDS * 4).expect("device alloc");
    let err = sess
        .launch(&[Arg::Buf(dout)], nd)
        .expect_err("kernel must fault on the simulator");
    ReproError::from(err)
}

/// Both back ends fault on `src` with the same `kind` and `class`.
fn assert_both_classify(src: &str, nd: &NdRange, kind: &str, class: FailureClass) {
    let ie = interp_error(src, nd);
    assert_eq!(ie.kind(), kind, "interp: {ie}\n{src}");
    assert_eq!(ie.class(), class, "interp: {ie}\n{src}");
    let ve = vortex_error(src, nd);
    assert_eq!(ve.kind(), kind, "vortex: {ve}\n{src}");
    assert_eq!(ve.class(), class, "vortex: {ve}\n{src}");
}

/// A warp-uniform subset of the group reaches the barrier; the rest
/// return. Classic divergent-barrier deadlock, detected (not hung) on both
/// back ends with a structured report.
#[test]
fn divergent_barrier_is_detected_on_both_backends() {
    let src = "__kernel void bad(__global int* o) {
        int lid = get_local_id(0);
        if (lid < 4) { barrier(CLK_LOCAL_MEM_FENCE); }
        o[get_global_id(0)] = lid;
    }";
    let nd = NdRange::d1(16, 16);
    assert_both_classify(src, &nd, "DivergenceDeadlock", FailureClass::Deadlock);
    // The simulator's report names the stuck warp(s).
    match vortex_error(src, &nd) {
        ReproError::DivergenceDeadlock { stuck } => {
            assert!(!stuck.is_empty(), "deadlock report lists no stuck warps")
        }
        other => panic!("expected DivergenceDeadlock, got {other}"),
    }
}

/// The two sides of a branch execute different *numbers* of barriers: the
/// first round pairs up, then the then-branch's second barrier waits on
/// warps that have already returned.
#[test]
fn mismatched_barrier_counts_deadlock_on_both_backends() {
    let src = "__kernel void bad(__global int* o) {
        int lid = get_local_id(0);
        if (lid < 4) {
            barrier(CLK_LOCAL_MEM_FENCE);
            barrier(CLK_LOCAL_MEM_FENCE);
        } else {
            barrier(CLK_LOCAL_MEM_FENCE);
        }
        o[get_global_id(0)] = lid;
    }";
    let nd = NdRange::d1(16, 16);
    assert_both_classify(src, &nd, "DivergenceDeadlock", FailureClass::Deadlock);
}

/// A loop that never advances trips the instruction budget — the Hang
/// class — instead of wedging the test harness.
#[test]
fn infinite_loop_trips_the_watchdog_on_both_backends() {
    let src = "__kernel void bad(__global int* o) {
        int acc = 0;
        for (int j = 0; j < 10; j = j) { acc = acc + 1; }
        o[get_global_id(0)] = acc;
    }";
    let nd = NdRange::d1(16, 4);
    assert_both_classify(src, &nd, "InstructionBudget", FailureClass::Hang);
}

/// A store far past the output buffer faults as a classified memory error
/// on both back ends.
#[test]
fn oob_store_faults_on_both_backends() {
    let src = "__kernel void bad(__global int* o) {
        int i = get_global_id(0);
        o[i + 268435456] = 1;
    }";
    let nd = NdRange::d1(16, 4);
    assert_both_classify(src, &nd, "OutOfBounds", FailureClass::Memory);
}
