//! Integration tests for the `repro perf-report` pipeline dashboard.
//!
//! Lives in its own integration binary (= its own process) on purpose: the
//! metrics registry is global, and the collection pass enables it, so these
//! tests must not share a process with unit tests that compile or run
//! benchmarks concurrently. Within this binary, every test that touches the
//! registry serializes on [`lock`].
//!
//! The golden pins the deterministic rendering (`timing: false`: cycle
//! counts, stage names + observation counts, failure classes — no
//! wall-clock). Regenerate after an intentional change with
//! `REGOLD=1 cargo test --test perf_report`.

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::obs;
use fpga_gpu_repro::repro::{collect_perf, render_perf_html, render_perf_markdown, PerfOptions};
use fpga_gpu_repro::suite::{benchmark, run_vortex, Scale};
use fpga_gpu_repro::vsim::SimConfig;
use repro_util::metrics;
use std::sync::{Mutex, MutexGuard};

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn perf_report_markdown_matches_golden() {
    let _g = lock();
    // Warm the global compile cache with exactly the run
    // `metrics_disabled_are_observably_free` performs, so the stage counts
    // below don't depend on whether that test happened to run first (test
    // order changes under `--test-threads` > 1 or a name filter).
    let b = benchmark("Vecadd").unwrap();
    run_vortex(&b, Scale::Test, &SimConfig::new(VortexConfig::new(4, 8, 8))).unwrap();
    let report = collect_perf(&PerfOptions::default());
    metrics::reset();
    assert_eq!(report.rows.len(), 28, "suite sweep covers every benchmark");
    assert_eq!(report.grid.len(), 18, "2 benches x {{4,8,16}}^2 grid cells");
    assert!(!report.stages.is_empty());
    let rendered = render_perf_markdown(&report, None, false);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/perf_report.md");
    if std::env::var_os("REGOLD").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with REGOLD=1 to create it");
    assert_eq!(
        rendered, golden,
        "perf-report output changed; if intentional, regenerate with REGOLD=1"
    );
    // The HTML dashboard renders the same report without panicking and
    // stays self-contained (no external asset, no script).
    let html = render_perf_html(&report, None);
    assert!(html.contains("Pipeline stage time"));
    assert!(!html.contains("<script") && !html.contains("http://") && !html.contains("https://"));
}

#[test]
fn metrics_disabled_are_observably_free() {
    let _g = lock();
    metrics::disable();
    metrics::reset();
    let b = benchmark("Vecadd").unwrap();
    let cfg = SimConfig::new(VortexConfig::new(4, 8, 8));
    // A bench-sim sub-grid cell with the registry off: nothing is recorded…
    let off = run_vortex(&b, Scale::Test, &cfg).unwrap();
    assert!(
        metrics::snapshot().is_empty(),
        "disabled registry must record nothing"
    );
    // …the windowed view is empty too (disarmed cost is one relaxed load)…
    let w = metrics::window_snapshot();
    assert!(w.counters.is_empty() && w.histograms.is_empty());
    // …and the simulation itself is bit-identical to an instrumented run.
    metrics::enable();
    let on = run_vortex(&b, Scale::Test, &cfg).unwrap();
    let snap = metrics::snapshot();
    metrics::disable();
    metrics::reset();
    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.instructions, on.instructions);
    assert_eq!(off.printf_output, on.printf_output);
    assert!(snap.histogram("suite.vortex.launch").is_some());
    assert!(snap.counter("suite.runs.vortex").unwrap_or(0) >= 1);
}

#[test]
fn windowed_and_armed_observability_stay_bit_identical() {
    let _g = lock();
    // Disarmed observability records nothing: no spans outside a job, no
    // events, nothing in the windowed registry.
    metrics::disable();
    metrics::reset();
    metrics::window_reset();
    obs::disarm();
    let b = benchmark("Vecadd").unwrap();
    let cfg = SimConfig::new(VortexConfig::new(4, 8, 8));
    let off = run_vortex(&b, Scale::Test, &cfg).unwrap();
    obs::event("smoke", "never recorded while disarmed");
    assert_eq!(obs::drain_events().0.len(), 0);
    let w = metrics::window_snapshot();
    assert!(w.counters.is_empty() && w.histograms.is_empty());
    // The full serve-style arming — cumulative + windowed metrics + obs —
    // changes nothing about what the simulator computes…
    metrics::enable();
    metrics::window_enable();
    obs::arm();
    let on = run_vortex(&b, Scale::Test, &cfg).unwrap();
    let w = metrics::window_snapshot();
    // …while the windowed registry now sees the run.
    obs::disarm();
    metrics::window_disable();
    metrics::disable();
    metrics::reset();
    metrics::window_reset();
    assert_eq!(off.cycles, on.cycles);
    assert_eq!(off.instructions, on.instructions);
    assert_eq!(off.printf_output, on.printf_output);
    assert!(
        w.counter("suite.runs.vortex") >= 1,
        "windowed registry must see the armed run"
    );
    assert!(w.histogram("suite.vortex.launch").is_some());
}
