//! Span-tree determinism: the *shape* of a job's span tree (names,
//! nesting, child order) is a pure function of what the job executed, and
//! its trace id is a pure function of the request — neither may depend on
//! pool width, which worker ran the job, or wall-clock luck.
//!
//! Lives in its own integration binary on purpose: arming `repro-obs` and
//! the metrics registry is process-global, and span recording piggybacks on
//! every `metrics::time` call site — sharing a process with tests that
//! assert empty registries or byte-identical serve output would race.
//!
//! The batch is run once sequentially first to warm the global compile
//! cache, so both pool widths execute fully cache-hit and their trees
//! can't differ by who compiled first.

use fpga_gpu_repro::obs;
use fpga_gpu_repro::sched::{ExecConfig, Executor, Flow, JobRequest};
use fpga_gpu_repro::suite::{instantiate, run_oneshot};
use repro_util::{metrics, ToJson};

fn batch() -> Vec<JobRequest> {
    ["Vecadd", "Saxpy", "Sfilter"]
        .iter()
        .flat_map(|name| {
            [Flow::Vortex, Flow::Interp]
                .into_iter()
                .map(|flow| JobRequest::bench(name, flow))
        })
        .collect()
}

fn run_at(workers: usize) -> Vec<(u64, String, usize)> {
    let exec = Executor::new(ExecConfig::with_workers(workers));
    let outcomes = exec.run(batch().into_iter().map(instantiate).collect());
    outcomes
        .iter()
        .map(|oc| {
            let spans = oc
                .spans
                .as_ref()
                .unwrap_or_else(|| panic!("armed run must attach spans to {}", oc.label));
            (oc.trace_id, spans.signature(), spans.count())
        })
        .collect()
}

#[test]
fn span_trees_are_identical_across_pool_widths_and_reruns() {
    metrics::enable();
    obs::arm();
    // Warm the compile cache so every scheduled run below is a cache hit.
    for req in batch() {
        run_oneshot(&req).expect("warm-up run succeeds");
    }
    let narrow = run_at(1);
    let wide = run_at(4);
    let again = run_at(4);
    assert_eq!(narrow.len(), 6);
    // Same structure and node counts at any width; durations are the only
    // nondeterministic part of a tree and are excluded by signature().
    assert_eq!(narrow, wide, "pool width must not change span structure");
    assert_eq!(wide, again, "reruns must not change span structure");
    for (trace_id, sig, count) in &narrow {
        assert!(sig.starts_with("job("), "root is the synthetic job: {sig}");
        assert!(sig.contains("queue_wait"), "{sig}");
        assert!(sig.contains("flow."), "{sig}");
        assert!(*count >= 3, "job + queue_wait + flow at minimum: {sig}");
        assert_ne!(*trace_id, 0);
    }
    // Trace ids are a pure function of (request, slot): recomputing from
    // the wire form reproduces them.
    for (i, (req, (trace_id, _, _))) in batch().iter().zip(&narrow).enumerate() {
        assert_eq!(
            *trace_id,
            obs::trace_id(&req.to_json().to_compact(), i),
            "trace id must be derivable from the request alone"
        );
    }
    // Distinct slots get distinct ids even for identical payloads.
    let mut ids: Vec<u64> = narrow.iter().map(|(t, _, _)| *t).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 6);
}

#[test]
fn vortex_and_interp_flows_record_their_own_stage_spans() {
    metrics::enable();
    obs::arm();
    for req in batch() {
        run_oneshot(&req).expect("warm-up run succeeds");
    }
    let exec = Executor::new(ExecConfig::with_workers(2));
    let outcomes = exec.run(batch().into_iter().map(instantiate).collect());
    let sig_of = |flow: Flow| {
        outcomes
            .iter()
            .zip(batch())
            .find(|(_, req)| req.flow == flow)
            .map(|(oc, _)| oc.spans.as_ref().unwrap().signature())
            .unwrap()
    };
    let vortex = sig_of(Flow::Vortex);
    assert!(vortex.contains("flow.vortex("), "{vortex}");
    assert!(vortex.contains("suite.vortex.launch"), "{vortex}");
    let interp = sig_of(Flow::Interp);
    assert!(interp.contains("flow.interp("), "{interp}");
    assert!(interp.contains("suite.interp.launch"), "{interp}");
}
