//! Cache-equivalence differential suite: the content-addressed compile
//! cache must be *invisible* to every consumer. Cold compiles, warm
//! memory hits, warm disk hits, and post-restart disk hits all have to
//! produce byte-identical artifacts and identical end-to-end simulation
//! results across the whole benchmark matrix — and a corrupted or
//! half-written entry must silently degrade to a fresh compile, never to
//! a wrong answer.

use fpga_gpu_repro::arch::{Device, VortexConfig};
use fpga_gpu_repro::cache::{wire, Cache, CacheConfig, Stage};
use fpga_gpu_repro::hls::{synthesize, SynthOptions};
use fpga_gpu_repro::ir::passes::OptLevel;
use fpga_gpu_repro::suite::runner::{run_vortex_trace_at, DEFAULT_OPT};
use fpga_gpu_repro::suite::{all_benchmarks, Scale};
use fpga_gpu_repro::vsim::SimConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn mem_cache() -> Cache {
    Cache::new(CacheConfig::default())
}

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "repro-cache-eq-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Compile `src` at `level` with no cache anywhere near the pipeline —
/// the fresh-compilation oracle every cached artifact is compared against.
fn fresh_optimize(src: &str, level: OptLevel) -> fpga_gpu_repro::ir::Module {
    let mut m = ocl_front::compile(src).expect("fresh compile");
    fpga_gpu_repro::ir::passes::optimize_module(&mut m, level);
    fpga_gpu_repro::ir::verify::verify_module(&m).expect("fresh verify");
    m
}

/// The tentpole matrix: every benchmark x every optimization level x both
/// flows. For each cell, the cold cached artifact, the warm (memory-hit)
/// artifact and a fresh uncached compile must all encode to the same
/// canonical bytes — i.e. the cache can never change what a consumer sees.
#[test]
fn artifacts_byte_identical_cold_warm_fresh_across_matrix() {
    let cache = mem_cache();
    let devices = [Device::mx2100(), Device::sx2800()];
    for b in all_benchmarks() {
        // Lowering (source as written).
        let fresh_lower = ocl_front::compile(b.source).expect(b.name);
        let cold = cache.lower(b.source).unwrap();
        let warm = cache.lower(b.source).unwrap();
        assert_eq!(
            wire::encode(&cold),
            wire::encode(&fresh_lower),
            "{}: cold lower != fresh",
            b.name
        );
        assert_eq!(
            wire::encode(&warm),
            wire::encode(&fresh_lower),
            "{}: warm lower != fresh",
            b.name
        );
        for level in OptLevel::ALL {
            // Middle end.
            let fresh = wire::encode(&fresh_optimize(b.source, level));
            let cold = wire::encode(&cache.optimize(b.source, level).unwrap());
            let warm = wire::encode(&cache.optimize(b.source, level).unwrap());
            assert_eq!(cold, fresh, "{} at {level:?}: cold opt != fresh", b.name);
            assert_eq!(warm, fresh, "{} at {level:?}: warm opt != fresh", b.name);

            // Vortex back end.
            let opts = fpga_gpu_repro::vcc::CodegenOpts { threads: 4 };
            let fresh_kernels: Vec<_> = fresh_optimize(b.source, level)
                .kernels
                .iter()
                .map(|k| fpga_gpu_repro::vcc::compile_kernel(k, &opts).expect(b.name))
                .collect();
            let fresh = wire::encode(&fresh_kernels);
            let cold = wire::encode(&cache.codegen_vortex(b.source, Some(level), 4).unwrap());
            let warm = wire::encode(&cache.codegen_vortex(b.source, Some(level), 4).unwrap());
            assert_eq!(
                cold, fresh,
                "{} at {level:?}: cold codegen != fresh",
                b.name
            );
            assert_eq!(
                warm, fresh,
                "{} at {level:?}: warm codegen != fresh",
                b.name
            );
        }
        // HLS synthesis outcome (reports and typed x failures alike), on
        // both paper devices.
        for device in &devices {
            let fresh = wire::encode(&synthesize(&fresh_lower, device, &SynthOptions::default()));
            let cold = wire::encode(&cache.synthesize_hls(b.source, device).unwrap());
            let warm = wire::encode(&cache.synthesize_hls(b.source, device).unwrap());
            assert_eq!(
                cold, fresh,
                "{} on {}: cold hls != fresh",
                b.name, device.name
            );
            assert_eq!(
                warm, fresh,
                "{} on {}: warm hls != fresh",
                b.name, device.name
            );
        }
    }
    let s = cache.stats();
    assert!(s.hits_mem > 0 && s.corrupt == 0 && s.disk_write_errors == 0);
}

/// Warm disk hits are byte-identical too: a second cache instance sharing
/// only the on-disk store (fresh empty memory tier) must return the same
/// bytes the first instance computed, serving them from disk.
#[test]
fn disk_hits_byte_identical_to_cold_compiles() {
    let dir = temp_dir("disk-hit");
    let mk = || {
        Cache::new(CacheConfig {
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
    };
    let first = mk();
    let mut cold_bytes = Vec::new();
    for b in all_benchmarks().iter().take(6) {
        cold_bytes.push(wire::encode(
            &first.optimize(b.source, DEFAULT_OPT).unwrap(),
        ));
        cold_bytes.push(wire::encode(
            &first
                .codegen_vortex(b.source, Some(DEFAULT_OPT), 8)
                .unwrap(),
        ));
    }
    assert_eq!(first.stats().hits_disk, 0);

    let second = mk();
    let mut warm_bytes = Vec::new();
    for b in all_benchmarks().iter().take(6) {
        warm_bytes.push(wire::encode(
            &second.optimize(b.source, DEFAULT_OPT).unwrap(),
        ));
        warm_bytes.push(wire::encode(
            &second
                .codegen_vortex(b.source, Some(DEFAULT_OPT), 8)
                .unwrap(),
        ));
    }
    assert_eq!(
        cold_bytes, warm_bytes,
        "disk-served artifacts differ from cold"
    );
    let s = second.stats();
    assert_eq!(s.misses, 0, "second instance should be fully disk-served");
    assert!(s.hits_disk > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end equivalence: a full Vortex run (cycles, stall breakdowns,
/// final buffer contents, printf output) is identical whether the compile
/// was cold or served warm from the cache — for every benchmark.
#[test]
fn end_to_end_sim_results_identical_cold_vs_warm() {
    // 8x8 per core: large enough for Backprop's 64-wide work groups.
    let cfg = SimConfig::new(VortexConfig::new(4, 8, 8));
    for b in all_benchmarks() {
        let cold = run_vortex_trace_at(&b, Scale::Test, &cfg, DEFAULT_OPT)
            .unwrap_or_else(|e| panic!("{}: cold run: {e}", b.name));
        let warm = run_vortex_trace_at(&b, Scale::Test, &cfg, DEFAULT_OPT)
            .unwrap_or_else(|e| panic!("{}: warm run: {e}", b.name));
        assert_eq!(
            cold, warm,
            "{}: warm-cache run diverged from cold run",
            b.name
        );
    }
}

/// The PR 6 memoization guarantee, now enforced by the shared cache and
/// observable through its miss counters: across repeated suite-style
/// traffic, each `(benchmark, level)` pair is compiled at most once and
/// each benchmark is lowered at most once.
#[test]
fn each_bench_level_pair_compiles_at_most_once() {
    let cache = mem_cache();
    let benches = all_benchmarks();
    for _round in 0..3 {
        for b in &benches {
            for level in OptLevel::ALL {
                cache.optimize(b.source, level).unwrap();
            }
        }
    }
    let s = cache.stats();
    let n = benches.len() as u64;
    assert_eq!(
        s.misses_by_stage[Stage::Opt.index()],
        n * OptLevel::ALL.len() as u64,
        "some (bench, level) pair compiled more than once"
    );
    assert_eq!(
        s.misses_by_stage[Stage::Lower.index()],
        n,
        "some benchmark was lowered more than once"
    );
    // Rounds two and three are pure hits; round one also hit the cached
    // lowering three times per benchmark (once per subsequent level).
    assert_eq!(s.hits_mem, 2 * n * OptLevel::ALL.len() as u64 + 3 * n);
}

/// Crash consistency: a truncated entry, a bit-flipped payload, and a
/// leftover `.tmp` from a simulated mid-write crash must all degrade to a
/// fresh compile whose artifact is byte-identical to the uncorrupted one.
#[test]
fn corrupt_and_partial_disk_entries_recompile_correctly() {
    let dir = temp_dir("corrupt");
    let b = &all_benchmarks()[0];
    let mk = || {
        Cache::new(CacheConfig {
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
    };
    let writer = mk();
    let good = wire::encode(&writer.optimize(b.source, OptLevel::Basic).unwrap());
    let entry = {
        let store = fpga_gpu_repro::cache::disk::DiskStore::new(dir.clone());
        let mut found = None;
        for f in std::fs::read_dir(store.dir()).unwrap() {
            let p = f.unwrap().path();
            if p.extension().is_some_and(|e| e == "bin")
                && p.file_name().unwrap().to_str().unwrap().starts_with("opt-")
            {
                found = Some(p);
            }
        }
        found.expect("opt entry on disk")
    };
    let sealed = std::fs::read(&entry).unwrap();

    // Truncation (torn write that dodged the atomic rename).
    std::fs::write(&entry, &sealed[..sealed.len() / 2]).unwrap();
    let c = mk();
    assert_eq!(
        wire::encode(&c.optimize(b.source, OptLevel::Basic).unwrap()),
        good
    );
    assert_eq!(c.stats().corrupt, 1);
    assert_eq!(c.stats().misses, 1);

    // Bit flip in the payload (checksum must catch it).
    let mut flipped = sealed.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    std::fs::write(&entry, &flipped).unwrap();
    let c = mk();
    assert_eq!(
        wire::encode(&c.optimize(b.source, OptLevel::Basic).unwrap()),
        good
    );
    assert_eq!(c.stats().corrupt, 1);

    // Leftover .tmp from a crashed writer: reads ignore it, and the real
    // entry (re-written above) still serves.
    std::fs::write(dir.join("opt-dead.12345.0.tmp"), b"partial").unwrap();
    let c = mk();
    assert_eq!(
        wire::encode(&c.optimize(b.source, OptLevel::Basic).unwrap()),
        good
    );
    assert_eq!(c.stats().hits_disk, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A schema-version bump silently invalidates old entries: no corruption
/// counted, just a recompile that overwrites the stale file.
#[test]
fn stale_version_entries_are_silently_recompiled() {
    let dir = temp_dir("stale");
    let b = &all_benchmarks()[0];
    let mk = || {
        Cache::new(CacheConfig {
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        })
    };
    let writer = mk();
    let good = wire::encode(&writer.optimize(b.source, OptLevel::Basic).unwrap());
    for f in std::fs::read_dir(&dir).unwrap() {
        let p = f.unwrap().path();
        if p.extension().is_some_and(|e| e == "bin") {
            let mut bytes = std::fs::read(&p).unwrap();
            // Version field is the u32 right after the 4-byte magic.
            bytes[4] ^= 0xff;
            std::fs::write(&p, &bytes).unwrap();
        }
    }
    let c = mk();
    assert_eq!(
        wire::encode(&c.optimize(b.source, OptLevel::Basic).unwrap()),
        good
    );
    let s = c.stats();
    assert_eq!(s.corrupt, 0, "version skew is staleness, not corruption");
    // Both the Opt entry and the Lower entry it chains to were stale.
    assert_eq!(s.misses, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Process-restart persistence, via a real child process
// ---------------------------------------------------------------------------

/// Not a test: the body of the child process spawned by
/// [`disk_cache_survives_process_restart`]. Reads `CACHE_EQ_DIR`, compiles
/// one benchmark through a disk-backed cache, and prints a digest of the
/// artifacts plus its miss/hit counters for the parent to compare.
#[test]
#[ignore = "child-process probe; driven by disk_cache_survives_process_restart"]
fn child_warm_probe() {
    let Some(dir) = std::env::var_os("CACHE_EQ_DIR") else {
        return; // invoked by a bare `--ignored` sweep, not by the parent
    };
    let cache = Cache::new(CacheConfig {
        disk_dir: Some(PathBuf::from(dir)),
        ..CacheConfig::default()
    });
    let b = &all_benchmarks()[1];
    let mut h = wire::Fnv::new();
    h.write(&wire::encode(
        &cache.optimize(b.source, DEFAULT_OPT).unwrap(),
    ));
    h.write(&wire::encode(
        &cache
            .codegen_vortex(b.source, Some(DEFAULT_OPT), 4)
            .unwrap(),
    ));
    h.write(&wire::encode(
        &cache.synthesize_hls(b.source, &Device::mx2100()).unwrap(),
    ));
    let s = cache.stats();
    // Parsed by the parent; keep on one line so test-harness chatter
    // around it doesn't matter.
    println!(
        "CACHE_EQ_RESULT digest={:016x} misses={} hits_disk={}",
        h.finish(),
        s.misses,
        s.hits_disk
    );
}

fn run_probe(dir: &std::path::Path) -> (u64, u64, u64) {
    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args(["--exact", "child_warm_probe", "--ignored", "--nocapture"])
        .env("CACHE_EQ_DIR", dir)
        .output()
        .expect("spawn child probe");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "child probe failed:\n{stdout}");
    // libtest may glue its own "test ... " prefix onto the line, so match
    // by substring and parse from the marker on.
    let line = stdout
        .lines()
        .find_map(|l| l.split("CACHE_EQ_RESULT").nth(1))
        .unwrap_or_else(|| panic!("no result line in child output:\n{stdout}"));
    let field = |name: &str| -> u64 {
        let v = line
            .split_whitespace()
            .find_map(|w| w.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("missing {name} in: {line}"));
        u64::from_str_radix(v, if name == "digest" { 16 } else { 10 }).unwrap()
    };
    (field("digest"), field("misses"), field("hits_disk"))
}

/// The on-disk tier survives a process restart: a second OS process sees
/// only hits (zero compiles) and reproduces bit-identical artifacts. This
/// is the property the old per-process memoization could not provide.
#[test]
fn disk_cache_survives_process_restart() {
    let dir = temp_dir("restart");
    let (cold_digest, cold_misses, cold_disk_hits) = run_probe(&dir);
    assert!(cold_misses > 0, "first process should compile");
    assert_eq!(cold_disk_hits, 0);
    let (warm_digest, warm_misses, warm_disk_hits) = run_probe(&dir);
    assert_eq!(warm_digest, cold_digest, "restart changed artifact bytes");
    assert_eq!(
        warm_misses, 0,
        "second process recompiled despite disk cache"
    );
    assert!(warm_disk_hits > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
