//! Structural invariants of the trace artifacts: the Chrome-trace export
//! is well-formed JSON (validated with the in-tree parser), timestamps are
//! monotone within every track, and the exported event durations tile each
//! launch's issued + stalled cycle totals exactly — the same accounting
//! identity the simulator's counter statistics obey. A golden-file test
//! pins the rendered `repro profile` output for one small benchmark.
//!
//! Regenerate the golden file after an intentional change with:
//! `REGOLD=1 cargo test --test trace_invariants`.

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::repro::chrome_trace::{chrome_trace, STALL_TID};
use fpga_gpu_repro::repro::report::{render_profile, ProfileSection};
use fpga_gpu_repro::suite::{benchmark, run_vortex_events, Benchmark, Scale, VortexTrace};
use fpga_gpu_repro::vsim::{LaunchProfile, SimConfig, TraceEvent};
use repro_util::Json;

/// The machine shape `repro trace` / `repro profile` use.
fn trace_config() -> SimConfig {
    SimConfig::new(VortexConfig::new(1, 8, 8))
}

fn traced(name: &str) -> (Benchmark, VortexTrace, Vec<Vec<TraceEvent>>) {
    let b = benchmark(name).expect("benchmark exists");
    let (trace, events) =
        run_vortex_events(&b, Scale::Test, &trace_config()).unwrap_or_else(|e| panic!("{e}"));
    (b, trace, events)
}

#[test]
fn chrome_export_parses_and_is_monotone_per_track() {
    for name in ["Vecadd", "Dotproduct"] {
        let (_, _, events) = traced(name);
        let doc = chrome_trace(&events);
        let parsed = Json::parse(&doc.to_pretty())
            .unwrap_or_else(|e| panic!("{name}: export is not valid JSON: {e}"));
        let rows = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap_or_else(|| panic!("{name}: missing traceEvents array"));
        assert!(!rows.is_empty(), "{name}: empty trace");
        let mut last: Option<(u64, u64, u64)> = None;
        for row in rows {
            let ph = row.get("ph").and_then(|v| v.as_str()).unwrap();
            if ph == "M" {
                continue;
            }
            let pid = row.get("pid").and_then(|v| v.as_u64()).unwrap();
            let tid = row.get("tid").and_then(|v| v.as_u64()).unwrap();
            let ts = row.get("ts").and_then(|v| v.as_u64()).unwrap();
            if let Some((lp, lt, lts)) = last {
                assert!(
                    (pid, tid) != (lp, lt) || ts >= lts,
                    "{name}: track ({pid},{tid}) goes backwards: {ts} after {lts}"
                );
            }
            last = Some((pid, tid, ts));
        }
    }
}

/// In the exported JSON, the issue durations on the warp tracks plus the
/// stall-span durations tile each launch's `issued + stalled` cycle total.
#[test]
fn chrome_export_durations_tile_launch_totals() {
    for name in ["Vecadd", "Dotproduct", "Backprop"] {
        let (_, trace, events) = traced(name);
        let doc = chrome_trace(&events);
        let rows = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let mut issued = vec![0u64; events.len()];
        let mut stalled = vec![0u64; events.len()];
        for row in rows {
            let (Some(dur), Some(tid)) = (
                row.get("dur").and_then(|v| v.as_u64()),
                row.get("tid").and_then(|v| v.as_u64()),
            ) else {
                continue;
            };
            let launch = row
                .get("args")
                .and_then(|a| a.get("launch"))
                .and_then(|v| v.as_u64())
                .unwrap() as usize;
            if tid < STALL_TID {
                issued[launch] += dur;
            } else if tid == STALL_TID {
                stalled[launch] += dur;
            }
        }
        for (li, stats) in trace.launch_stats.iter().enumerate() {
            assert_eq!(
                issued[li], stats.instructions,
                "{name} launch {li}: warp-track durations vs issued instructions"
            );
            let stall_total =
                stats.stall_scoreboard + stats.stall_lsu + stats.stall_barrier + stats.stall_idle;
            assert_eq!(
                stalled[li], stall_total,
                "{name} launch {li}: stall-track durations vs stall cycles"
            );
            assert_eq!(
                issued[li] + stalled[li],
                stats.cycles,
                "{name} launch {li}: durations must tile the issued+stalled total"
            );
        }
    }
}

/// The aggregated [`LaunchProfile`] tiles exactly with the simulator's
/// counter statistics, launch by launch, in both scheduler modes.
#[test]
fn profile_tiles_with_stats_in_both_modes() {
    for name in ["Vecadd", "Dotproduct", "Gaussian", "Backprop"] {
        let b = benchmark(name).expect("benchmark exists");
        for dense in [false, true] {
            let mut cfg = trace_config();
            cfg.reference_mode = dense;
            let (trace, events) =
                run_vortex_events(&b, Scale::Test, &cfg).unwrap_or_else(|e| panic!("{e}"));
            for (li, (evs, stats)) in events.iter().zip(&trace.launch_stats).enumerate() {
                let p = LaunchProfile::from_events(evs);
                p.verify_tiling(stats).unwrap_or_else(|e| {
                    panic!(
                        "{name} launch {li} ({}): {e}",
                        if dense { "dense" } else { "fast" }
                    )
                });
            }
        }
    }
}

/// Golden-file pin of the rendered profile for one small benchmark — the
/// same rendering path `repro profile Vecadd` prints.
#[test]
fn vecadd_profile_matches_golden_file() {
    let (b, trace, events) = traced("Vecadd");
    let cfg = trace_config();
    // Disassembly must come from the same optimized module the run executed.
    let module = fpga_gpu_repro::suite::compile_bench(&b, fpga_gpu_repro::suite::DEFAULT_OPT)
        .unwrap_or_else(|e| panic!("{e}"));
    let opts = vortex_cc::CodegenOpts {
        threads: cfg.hw.threads,
    };
    let w = (b.workload)(Scale::Test);
    let sections: Vec<ProfileSection> = events
        .iter()
        .zip(&w.launches)
        .zip(&trace.launch_stats)
        .map(|((evs, l), stats)| {
            let profile = LaunchProfile::from_events(evs);
            profile.verify_tiling(stats).unwrap();
            let disasm = module
                .kernel(l.kernel)
                .and_then(|k| vortex_cc::compile_kernel(k, &opts).ok())
                .map(|c| c.program.instrs.iter().map(|i| i.to_string()).collect())
                .unwrap_or_default();
            ProfileSection {
                kernel: l.kernel.to_string(),
                profile,
                disasm,
            }
        })
        .collect();
    let rendered = render_profile(b.name, &sections, 8);
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/vecadd_profile.md"
    );
    if std::env::var_os("REGOLD").is_some() {
        std::fs::write(golden_path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with REGOLD=1 to create it");
    assert_eq!(
        rendered, golden,
        "profile output changed; if intentional, regenerate with REGOLD=1"
    );
}
