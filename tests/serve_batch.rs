//! Scheduler determinism and fail-soft classification at service scale.
//!
//! The `repro serve` contract is that putting work through the
//! work-stealing executor changes *when* things run, never *what* they
//! compute: a 4-worker batch over the whole suite must be bit-identical —
//! cycles, instructions, success/failure — to running the same requests
//! one at a time in a plain loop. And adversarial kernels submitted as
//! inline-source jobs must come back as classified response lines (the
//! fail-soft taxonomy of `tests/fail_soft.rs`), never as a wedged or dead
//! service.

use fpga_gpu_repro::ir::passes::OptLevel;
use fpga_gpu_repro::repro::serve::{serve_bench_requests, serve_lines, ServeOptions};
use fpga_gpu_repro::sched::{ArgSpec, ExecConfig, Executor, Flow, JobRequest, NdSpec, Payload};
use fpga_gpu_repro::suite::{instantiate, run_oneshot, FailureClass};
use fpga_gpu_repro::util::{Json, ToJson};

/// The whole suite — 28 benchmarks × 2 opt levels on the Vortex flow —
/// through a 4-worker pool, versus the sequential one-shot reference.
/// Everything observable must match exactly.
#[test]
fn four_worker_batch_is_bit_identical_to_sequential_oneshot() {
    let reqs = serve_bench_requests();
    assert_eq!(reqs.len(), 56, "28 benchmarks x 2 opt levels");
    let sequential: Vec<_> = reqs.iter().map(run_oneshot).collect();
    let exec = Executor::new(ExecConfig::with_workers(4));
    let outcomes = exec.run(reqs.iter().cloned().map(instantiate).collect());
    assert_eq!(outcomes.len(), sequential.len());
    for ((oc, seq), req) in outcomes.iter().zip(&sequential).zip(&reqs) {
        assert_eq!(oc.id, req.id, "outcomes come back in submission order");
        match (&oc.result, seq) {
            (Ok(got), Ok(want)) => {
                assert_eq!(got, want, "{}: scheduled stats diverged", oc.label)
            }
            (Err(got), Err(want)) => {
                assert_eq!(
                    got.kind(),
                    want.kind(),
                    "{}: scheduled failure kind diverged",
                    oc.label
                )
            }
            (got, want) => panic!(
                "{}: scheduled {:?} vs sequential {:?}",
                oc.label,
                got.is_ok(),
                want.is_ok()
            ),
        }
    }
    // The suite is healthy on the Vortex flow at both levels.
    assert!(
        outcomes.iter().all(|oc| oc.is_ok()),
        "every Vortex job succeeds"
    );
    assert_eq!(exec.stats().jobs(), 56);
}

/// An adversarial inline-source request with the `tests/fail_soft.rs`
/// budgets: one core, 4×4 warps/threads, watchdogs tight enough to bound a
/// runaway kernel to well under a second. `lx` mirrors that suite's launch
/// geometry (the divergent barrier needs the full 16-item group so the
/// divergence is warp-uniform).
fn adversarial(id: u64, source: &str, lx: u32) -> JobRequest {
    JobRequest {
        id,
        payload: Payload::Source {
            source: source.to_string(),
            kernel: "bad".to_string(),
            nd: NdSpec {
                gx: 16,
                gy: 1,
                lx,
                ly: 1,
            },
            buffers: vec![64],
            args: vec![ArgSpec::Buf(0)],
        },
        flow: Flow::Vortex,
        opt: Some(OptLevel::None),
        cores: 1,
        warps: 4,
        threads: 4,
        sim_threads: 1,
        max_cycles: Some(5_000_000),
        max_instructions: Some(200_000),
        deadline_ms: None,
        reference: false,
    }
}

const DIVERGENT_BARRIER: &str = "__kernel void bad(__global int* o) {
    int lid = get_local_id(0);
    if (lid < 4) { barrier(CLK_LOCAL_MEM_FENCE); }
    o[get_global_id(0)] = lid;
}";

const INFINITE_LOOP: &str = "__kernel void bad(__global int* o) {
    int acc = 0;
    for (int j = 0; j < 10; j = j) { acc = acc + 1; }
    o[get_global_id(0)] = acc;
}";

const OOB_STORE: &str = "__kernel void bad(__global int* o) {
    int i = get_global_id(0);
    o[i + 268435456] = 1;
}";

/// Adversarial kernels through the executor: each dies typed with the same
/// classification the fail-soft suite pins, and none of them costs the
/// healthy job riding in the same batch its result.
#[test]
fn adversarial_batch_classifies_and_stays_fail_soft() {
    let mut reqs = vec![
        adversarial(1, DIVERGENT_BARRIER, 16),
        adversarial(2, INFINITE_LOOP, 4),
        adversarial(3, OOB_STORE, 4),
    ];
    let mut healthy = JobRequest::bench("Vecadd", Flow::Vortex);
    healthy.id = 4;
    reqs.push(healthy);
    let exec = Executor::new(ExecConfig::with_workers(2));
    let outcomes = exec.run(reqs.into_iter().map(instantiate).collect());
    let class_of = |i: usize| outcomes[i].class().expect("adversarial job fails");
    assert_eq!(class_of(0), FailureClass::Deadlock, "divergent barrier");
    assert_eq!(class_of(1), FailureClass::Hang, "infinite loop");
    assert_eq!(class_of(2), FailureClass::Memory, "OOB store");
    assert!(outcomes[3].is_ok(), "healthy neighbour unharmed");
    // Same requests sequentially: identical classification (the executor
    // adds isolation, not semantics).
    for (req, want) in [
        (
            adversarial(1, DIVERGENT_BARRIER, 16),
            FailureClass::Deadlock,
        ),
        (adversarial(2, INFINITE_LOOP, 4), FailureClass::Hang),
        (adversarial(3, OOB_STORE, 4), FailureClass::Memory),
    ] {
        assert_eq!(run_oneshot(&req).unwrap_err().class(), want);
    }
}

/// The same adversarial kernels over the NDJSON wire: request lines in,
/// one classified response line per job out, service alive throughout.
#[test]
fn adversarial_kernels_over_the_serve_protocol() {
    let mut input = String::new();
    for req in [
        adversarial(1, DIVERGENT_BARRIER, 16),
        adversarial(2, INFINITE_LOOP, 4),
        adversarial(3, OOB_STORE, 4),
    ] {
        input.push_str(&req.to_json().to_compact());
        input.push('\n');
    }
    input.push('\n');
    let exec = Executor::new(ExecConfig::with_workers(2));
    let mut out = Vec::new();
    let summary = serve_lines(&exec, &ServeOptions::default(), input.as_bytes(), &mut out)
        .expect("serve loop survives adversarial jobs");
    assert_eq!((summary.jobs, summary.ok, summary.failed), (3, 0, 3));
    let lines: Vec<Json> = std::str::from_utf8(&out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 4, "three responses plus the batch summary");
    for (line, want_class) in lines.iter().zip(["Deadlock", "Hang", "Memory"]) {
        assert_eq!(line.get("ok").and_then(|v| v.as_bool()), Some(false));
        let err = line.get("error").expect("failure line carries the error");
        assert_eq!(
            err.get("class").and_then(|v| v.as_str()),
            Some(want_class),
            "line: {}",
            line.to_compact()
        );
    }
    assert_eq!(lines[3].get("failed").and_then(|v| v.as_u64()), Some(3));
}
