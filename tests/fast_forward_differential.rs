//! Differential harness for the simulator's run loops: run each benchmark
//! under the fast-forward loop, the dense reference loop
//! (`SimConfig::reference_mode`), and the traced+parallel epoch loop
//! (`SimConfig::sim_threads`) and require *bit-identical* results —
//! per-launch cycle counts, the full stall breakdown, cache/DRAM counters,
//! final buffer contents, printf output, and canonical per-core trace
//! events.
//!
//! The benchmark set is chosen to cover the stall sources the scheduler
//! reasons about: vecadd/transpose (MSHR/LSU pressure and DRAM row
//! behavior), dotproduct and backprop (BAR barriers and WSPAWN fan-out,
//! multi-kernel launches), gaussian (divergent control flow with long
//! dependence chains), across single- and multi-core shapes.

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::suite::{benchmark, run_vortex_events, run_vortex_trace, Scale};
use fpga_gpu_repro::vsim::{canonical_core_events, SimConfig};

// Shapes must satisfy each benchmark's group-size constraint (dotproduct
// runs 16-wide work groups, backprop 64-wide: the group must be a multiple
// of threads/warp and fit in warps×threads).
type Shape = (u32, u32, u32);

const SHAPES: &[Shape] = &[(1, 4, 4), (1, 2, 8), (2, 4, 8), (2, 8, 16), (1, 16, 4)];
const WIDE_SHAPES: &[Shape] = &[(1, 8, 8), (1, 4, 16), (2, 8, 8), (2, 16, 4)];

fn bench_matrix() -> Vec<(&'static str, &'static [Shape])> {
    vec![
        ("Vecadd", SHAPES),
        ("Dotproduct", SHAPES),
        ("Transpose", SHAPES),
        ("Gaussian", SHAPES),
        ("Backprop", WIDE_SHAPES),
    ]
}

#[test]
fn fast_forward_is_bit_identical_to_dense_loop() {
    for (name, shapes) in bench_matrix() {
        let b = benchmark(name).expect("benchmark exists");
        for &(c, w, t) in shapes {
            let mut fast_cfg = SimConfig::new(VortexConfig::new(c, w, t));
            assert!(!fast_cfg.reference_mode, "fast-forward must be the default");
            let fast = run_vortex_trace(&b, Scale::Test, &fast_cfg)
                .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t fast: {e}"));

            fast_cfg.reference_mode = true;
            let dense = run_vortex_trace(&b, Scale::Test, &fast_cfg)
                .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t dense: {e}"));

            assert_eq!(
                fast.launch_stats, dense.launch_stats,
                "{name} {c}c{w}w{t}t: stats diverge between schedulers"
            );
            assert_eq!(
                fast.buffers, dense.buffers,
                "{name} {c}c{w}w{t}t: final memory diverges between schedulers"
            );
            assert_eq!(
                fast.printf_output, dense.printf_output,
                "{name} {c}c{w}w{t}t: printf output diverges between schedulers"
            );
        }
    }
}

/// All three run loops — dense reference, event-driven sequential, and the
/// traced+parallel epoch loop at 2 and 4 worker threads — must agree
/// bit-for-bit on every observable: launch stats (cycles, stall breakdown,
/// cache/DRAM counters), final memory, printf output, and the canonical
/// per-core trace event stream. The dense loop is the oracle; each
/// configuration's raw event stream is canonicalized per core (bulk spans
/// merged) before comparison, which is exactly the equivalence the epoch
/// design promises.
#[test]
fn all_loops_bit_identical_across_sim_threads() {
    for (name, shapes) in bench_matrix() {
        let b = benchmark(name).expect("benchmark exists");
        for &(c, w, t) in shapes {
            let mut cfg = SimConfig::new(VortexConfig::new(c, w, t));
            cfg.reference_mode = true;
            let (oracle, oracle_events) = run_vortex_events(&b, Scale::Test, &cfg)
                .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t dense: {e}"));
            let canon = |launches: &Vec<Vec<fpga_gpu_repro::vsim::TraceEvent>>| -> Vec<_> {
                launches
                    .iter()
                    .map(|evs| {
                        (0..c)
                            .map(|core| canonical_core_events(evs, core))
                            .collect::<Vec<_>>()
                    })
                    .collect()
            };
            let oracle_canon = canon(&oracle_events);
            for threads in [1u32, 2, 4] {
                let mut cfg = SimConfig::new(VortexConfig::new(c, w, t));
                cfg.sim_threads = threads;
                let (got, got_events) = run_vortex_events(&b, Scale::Test, &cfg)
                    .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t {threads}thr: {e}"));
                let what = format!("{name} {c}c{w}w{t}t at {threads} sim threads");
                assert_eq!(got.launch_stats, oracle.launch_stats, "{what}: stats");
                assert_eq!(got.buffers, oracle.buffers, "{what}: final memory");
                assert_eq!(got.printf_output, oracle.printf_output, "{what}: printf");
                assert_eq!(canon(&got_events), oracle_canon, "{what}: trace events");
            }
        }
    }
}

/// The stall breakdown must tile the timeline in both modes: every cycle a
/// core is live is either an issue or exactly one kind of stall, so the
/// bulk-accounted fast path can't silently drop or double-count cycles.
#[test]
fn stall_breakdown_accounts_for_every_cycle_single_core() {
    for &name in &["Vecadd", "Dotproduct", "Gaussian"] {
        let b = benchmark(name).expect("benchmark exists");
        let cfg = SimConfig::new(VortexConfig::new(1, 4, 8));
        let trace =
            run_vortex_trace(&b, Scale::Test, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (li, s) in trace.launch_stats.iter().enumerate() {
            let accounted =
                s.instructions + s.stall_scoreboard + s.stall_lsu + s.stall_barrier + s.stall_idle;
            assert_eq!(
                accounted, s.cycles,
                "{name} launch {li}: {} issued + stalled cycles vs {} total",
                accounted, s.cycles
            );
        }
    }
}
