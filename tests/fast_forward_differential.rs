//! Differential harness for the event-driven scheduler: run each benchmark
//! under both the fast-forward run loop and the dense reference loop
//! (`SimConfig::reference_mode`) and require *bit-identical* results —
//! per-launch cycle counts, the full stall breakdown, cache/DRAM counters,
//! final buffer contents, and printf output.
//!
//! The benchmark set is chosen to cover the stall sources the scheduler
//! reasons about: vecadd/transpose (MSHR/LSU pressure and DRAM row
//! behavior), dotproduct and backprop (BAR barriers and WSPAWN fan-out,
//! multi-kernel launches), gaussian (divergent control flow with long
//! dependence chains), across single- and multi-core shapes.

use fpga_gpu_repro::arch::VortexConfig;
use fpga_gpu_repro::suite::{benchmark, run_vortex_trace, Scale};
use fpga_gpu_repro::vsim::SimConfig;

// Shapes must satisfy each benchmark's group-size constraint (dotproduct
// runs 16-wide work groups, backprop 64-wide: the group must be a multiple
// of threads/warp and fit in warps×threads).
type Shape = (u32, u32, u32);

const SHAPES: &[Shape] = &[(1, 4, 4), (1, 2, 8), (2, 4, 8), (2, 8, 16), (1, 16, 4)];
const WIDE_SHAPES: &[Shape] = &[(1, 8, 8), (1, 4, 16), (2, 8, 8), (2, 16, 4)];

fn bench_matrix() -> Vec<(&'static str, &'static [Shape])> {
    vec![
        ("Vecadd", SHAPES),
        ("Dotproduct", SHAPES),
        ("Transpose", SHAPES),
        ("Gaussian", SHAPES),
        ("Backprop", WIDE_SHAPES),
    ]
}

#[test]
fn fast_forward_is_bit_identical_to_dense_loop() {
    for (name, shapes) in bench_matrix() {
        let b = benchmark(name).expect("benchmark exists");
        for &(c, w, t) in shapes {
            let mut fast_cfg = SimConfig::new(VortexConfig::new(c, w, t));
            assert!(!fast_cfg.reference_mode, "fast-forward must be the default");
            let fast = run_vortex_trace(&b, Scale::Test, &fast_cfg)
                .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t fast: {e}"));

            fast_cfg.reference_mode = true;
            let dense = run_vortex_trace(&b, Scale::Test, &fast_cfg)
                .unwrap_or_else(|e| panic!("{name} {c}c{w}w{t}t dense: {e}"));

            assert_eq!(
                fast.launch_stats, dense.launch_stats,
                "{name} {c}c{w}w{t}t: stats diverge between schedulers"
            );
            assert_eq!(
                fast.buffers, dense.buffers,
                "{name} {c}c{w}w{t}t: final memory diverges between schedulers"
            );
            assert_eq!(
                fast.printf_output, dense.printf_output,
                "{name} {c}c{w}w{t}t: printf output diverges between schedulers"
            );
        }
    }
}

/// The stall breakdown must tile the timeline in both modes: every cycle a
/// core is live is either an issue or exactly one kind of stall, so the
/// bulk-accounted fast path can't silently drop or double-count cycles.
#[test]
fn stall_breakdown_accounts_for_every_cycle_single_core() {
    for &name in &["Vecadd", "Dotproduct", "Gaussian"] {
        let b = benchmark(name).expect("benchmark exists");
        let cfg = SimConfig::new(VortexConfig::new(1, 4, 8));
        let trace =
            run_vortex_trace(&b, Scale::Test, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (li, s) in trace.launch_stats.iter().enumerate() {
            let accounted =
                s.instructions + s.stall_scoreboard + s.stall_lsu + s.stall_barrier + s.stall_idle;
            assert_eq!(
                accounted, s.cycles,
                "{name} launch {li}: {} issued + stalled cycles vs {} total",
                accounted, s.cycles
            );
        }
    }
}
