//! Umbrella crate: re-exports the whole reproduction stack for examples and integration tests.
pub use fpga_arch as arch;
pub use hls_flow as hls;
pub use ocl_front as front;
pub use ocl_ir as ir;
pub use ocl_suite as suite;
pub use repro_cache as cache;
pub use repro_core as repro;
pub use repro_diag as diag;
pub use repro_fault as fault;
pub use repro_obs as obs;
pub use repro_sched as sched;
pub use repro_util as util;
pub use vortex_cc as vcc;
pub use vortex_isa as visa;
pub use vortex_rt as vrt;
pub use vortex_sim as vsim;
