//! Quickstart: compile one OpenCL kernel and run it through *both* flows the
//! paper compares — the Vortex soft GPU (cycle-level simulation) and the
//! Intel-HLS-style pipeline (synthesis + pipelined execution model) — then
//! print what each flow reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fpga_arch::{Device, VortexConfig};
use ocl_ir::interp::{KernelArg, Memory, NdRange};
use vortex_rt::{Arg, VxSession};
use vortex_sim::SimConfig;

const SRC: &str = r#"
    __kernel void saxpy(__global const float* x, __global float* y, float a) {
        int i = get_global_id(0);
        y[i] = a * x[i] + y[i];
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024u32;
    let alpha = 2.0f32;
    let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let ys: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
    let nd = NdRange::d1(n, 16);

    // Shared front end (Figure 2 of the paper): one compile, two back ends.
    let module = ocl_front::compile(SRC)?;
    println!("compiled kernel IR:\n{}", module.kernels[0]);

    // --- Soft-GPU flow (Vortex): binary + cycle-level simulation ---------
    let hw = VortexConfig::new(2, 4, 8);
    let cfg = SimConfig::new(hw);
    let kernel = vortex_rt::compile_for(SRC, "saxpy", &cfg)?;
    println!(
        "vortex binary: {} instructions, {} divergent branches, {} spills",
        kernel.program.len(),
        kernel.divergent_branches,
        kernel.spill_slots
    );
    let mut sess = VxSession::new(cfg, kernel);
    let dx = sess.alloc_f32(&xs)?;
    let dy = sess.alloc_f32(&ys)?;
    let run = sess.launch(&[Arg::Buf(dx), Arg::Buf(dy), Arg::F32(alpha)], &nd)?;
    let vortex_out = sess.read_f32(dy, n as usize)?;
    println!(
        "vortex ({hw}): {} cycles, IPC {:.2}, d$ hit rate {:.0}%",
        run.stats.cycles,
        run.stats.ipc(),
        100.0 * run.stats.dcache_hit_rate()
    );

    // --- HLS flow: synthesize for the MX2100, then pipelined execution ---
    let device = Device::mx2100();
    let synth = hls_flow::synthesize(&module, &device, &Default::default())?;
    println!(
        "hls synthesis: {} (BRAM {:.0}% of {}), est. {:.1} h",
        synth.area, synth.utilization.brams_pct, device.name, synth.hours
    );
    let mut mem = Memory::new(1 << 20);
    let px = mem.alloc_f32(&xs);
    let py = mem.alloc_f32(&ys);
    let hls = hls_flow::execute_ndrange(
        &module.kernels[0],
        &[
            KernelArg::Ptr(px),
            KernelArg::Ptr(py),
            KernelArg::F32(alpha),
        ],
        &nd,
        &mut mem,
        &device,
    )?;
    let hls_out = mem.read_f32_slice(py, n as usize);
    println!("hls: {} cycles ({}-bound)", hls.cycles, hls.bound);

    // --- Identical source, identical results (the paper's methodology) ---
    assert_eq!(vortex_out, hls_out, "flows must agree bit-for-bit");
    let want: Vec<f32> = xs.iter().zip(&ys).map(|(x, y)| alpha * x + y).collect();
    assert_eq!(vortex_out, want);
    println!("both flows agree with the host reference on all {n} elements ✓");
    Ok(())
}
