//! Regenerate the paper's Table I from scratch: run all 28 benchmarks
//! through the Vortex flow (cycle simulation + result verification) and
//! through HLS synthesis for the MX2100, printing the coverage table with
//! failure reasons.
//!
//! ```sh
//! cargo run --release --example coverage_sweep
//! ```

use fpga_arch::VortexConfig;
use ocl_suite::Scale;
use repro_core::{coverage_table, report};

fn main() {
    let rows = coverage_table(Scale::Test, VortexConfig::new(2, 4, 16));
    print!("{}", report::render_table1(&rows));
    let v = rows.iter().filter(|r| r.vortex_ok()).count();
    let h = rows.iter().filter(|r| r.hls_ok()).count();
    println!("\nVortex {v}/28, Intel SDK {h}/28 (paper: 28/28 and 22/28)");
    let slowest = rows
        .iter()
        .max_by(|a, b| a.hls_hours.total_cmp(&b.hls_hours))
        .expect("28 rows");
    println!(
        "longest modeled synthesis: {} at {:.1} h (the paper reports 10.4 h \
         for its largest successful run)",
        slowest.name, slowest.hls_hours
    );
}
