//! Vortex configuration tuning — the workflow motivating the paper's §III-C
//! and §IV-A: pick a kernel, sweep warp/thread configurations on the cycle
//! simulator, and report the best one together with what the analytical
//! model (the paper's proposed future work) would have predicted.
//!
//! ```sh
//! cargo run --release --example tune_vortex [benchmark-name]
//! ```

use fpga_arch::{vortex_area, VortexConfig};
use ocl_suite::{benchmark, run_vortex, Scale};
use vortex_sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "Sfilter".into());
    let b = benchmark(&name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
    println!("tuning `{}` on the 4-core Vortex simulator\n", b.name);
    println!("| config | cycles | instrs | area (ALUT/BRAM/DSP) | fits SX2800? |");
    println!("|---|---|---|---|---|");
    let device = fpga_arch::Device::sx2800();
    let mut best: Option<(VortexConfig, u64)> = None;
    for w in [2u32, 4, 8, 16] {
        for t in [2u32, 4, 8, 16] {
            let hw = VortexConfig::new(4, w, t);
            let cfg = SimConfig::new(hw);
            let out = run_vortex(&b, Scale::Test, &cfg).map_err(|e| format!("{hw}: {e}"))?;
            let area = vortex_area(&hw);
            let fits = area.fits_in(&device.capacity);
            println!(
                "| {hw} | {} | {} | {}/{}/{} | {} |",
                out.cycles,
                out.instructions,
                area.aluts,
                area.brams,
                area.dsps,
                if fits { "yes" } else { "NO" }
            );
            if fits && best.map(|(_, c)| out.cycles < c).unwrap_or(true) {
                best = Some((hw, out.cycles));
            }
        }
    }
    let (hw, cycles) = best.expect("at least one config fits");
    println!(
        "\nbest synthesizable configuration: {hw} at {cycles} cycles — \
         \"the optimal hardware configuration in the soft GPU was found to be \
         application-dependent\" (paper §VI)."
    );
    Ok(())
}
