//! The paper's §III-B case study as a runnable walkthrough: take the
//! backprop kernels through the three optimization stages (Figure 6) and
//! watch the HLS resource estimate cross from "does not fit" (188% BRAM) to
//! synthesizable (<100%), then show the automated IR-level variable-reuse
//! pass reaching the same point as the manual rewrite.
//!
//! ```sh
//! cargo run --release --example hls_area_opt
//! ```

use fpga_arch::Device;
use hls_flow::{synthesize, SynthFailure, SynthOptions};
use ocl_suite::benches::ml::{BACKPROP_O1, BACKPROP_O2, BACKPROP_ORIGINAL};

fn report(label: &str, src: &str) -> Result<u64, Box<dyn std::error::Error>> {
    let device = Device::mx2100();
    let module = ocl_front::compile(src)?;
    match synthesize(&module, &device, &SynthOptions::default()) {
        Ok(r) => {
            println!(
                "{label:22} {:>9} ALUTs {:>9} FFs {:>6} BRAMs ({:>3.0}%)  -> synthesizes in {:.1} h",
                r.area.aluts, r.area.ffs, r.area.brams, r.utilization.brams_pct, r.hours
            );
            Ok(r.area.brams)
        }
        Err(SynthFailure::NotEnoughResources {
            required, hours, ..
        }) => {
            let pct = device.utilization(&required).brams_pct;
            println!(
                "{label:22} {:>9} ALUTs {:>9} FFs {:>6} BRAMs ({:>3.0}%)  -> FAILS after {hours:.1} h",
                required.aluts, required.ffs, required.brams, pct
            );
            Ok(required.brams)
        }
        Err(other) => Err(other.into()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Backprop on the Intel-HLS flow, MX2100 (6,847 M20K blocks):\n");
    let orig = report("original (Listing 1)", BACKPROP_ORIGINAL)?;
    let o1 = report("O1 variable reuse", BACKPROP_O1)?;
    let o2 = report("O2 pipelined load", BACKPROP_O2)?;
    assert!(orig > o1 && o1 > o2, "cumulative optimizations must shrink");

    // Automated O1: the IR CSE pass on the *original* source.
    let mut module = ocl_front::compile(BACKPROP_ORIGINAL)?;
    let stats =
        ocl_ir::passes::optimize_module(&mut module, ocl_ir::passes::OptLevel::VariableReuse);
    let device = Device::mx2100();
    let auto = match synthesize(&module, &device, &SynthOptions::default()) {
        Ok(r) => r.area.brams,
        Err(SynthFailure::NotEnoughResources { required, .. }) => required.brams,
        Err(other) => return Err(other.into()),
    };
    println!(
        "\nautomated O1 via IR CSE: {auto} BRAMs ({} loads/exprs reused, {} dead ops removed)",
        stats.rewrites("cse"),
        stats.rewrites("dce")
    );
    assert_eq!(auto, o1, "the pass must match the manual rewrite");
    println!(
        "== the manual Listing-2 rewrite, reproduced by the compiler — closing \
         the §IV-B automation gap."
    );
    Ok(())
}
